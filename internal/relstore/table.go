package relstore

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"toposearch/internal/fault"
)

// Injection points at the storage engine's write seams (no-ops unless
// a chaos harness arms them; see internal/fault).
var (
	faultInsert     = fault.Register("relstore.insert")
	faultCompact    = fault.Register("relstore.compact")
	faultCompactMid = fault.Register("relstore.compact.mid")
)

// column is the physical storage of one attribute: a typed array
// indexed by row position. TInt columns store values directly; TString
// columns store 32-bit codes into the table's shared string dictionary,
// so duplicated string payloads (descriptions, type tags) are stored
// once per distinct value rather than once per row.
type column struct {
	ints  []int64  // TInt values, one per row
	codes []uint32 // TString dictionary codes, one per row
}

// tableState is one published snapshot of the table's storage: the
// sealed base arrays, the delta append buffers layered on top of them,
// and the string dictionary. Row positions are global — position p is
// base row p when p < sealed and delta row p-sealed otherwise — and
// stay stable across Compact, so index entries and statistics survive
// a delta merge untouched.
//
// Snapshot discipline: the base arrays are immutable. The delta arrays
// and the dictionary are append-only; a writer (serialized by the
// table's write lock) appends new cells and publishes a fresh
// tableState with longer lengths. A reader's loaded snapshot never
// sees indices beyond its own lengths, so in-place growth of a shared
// backing array is invisible to it, and reallocation leaves the old
// array intact. Readers therefore never lock.
type tableState struct {
	sealed int32    // rows in the sealed base arrays
	nrows  int32    // total rows (sealed + delta)
	base   []column // sealed columnar arrays; never mutated
	delta  []column // delta append buffers (see snapshot discipline)
	strs   []string // dictionary code -> string
	// sealedStrs counts the dictionary entries that existed at the last
	// Compact; the tail strs[sealedStrs:] is delta-era growth, reported
	// separately by ApproxBytes.
	sealedStrs int
}

func (st *tableState) intAt(pos int32, c int) int64 {
	if pos < st.sealed {
		return st.base[c].ints[pos]
	}
	return st.delta[c].ints[pos-st.sealed]
}

func (st *tableState) codeAt(pos int32, c int) uint32 {
	if pos < st.sealed {
		return st.base[c].codes[pos]
	}
	return st.delta[c].codes[pos-st.sealed]
}

func (st *tableState) strAt(pos int32, c int) string {
	return st.strs[st.codeAt(pos, c)]
}

// valueAt materializes the cell at (pos, col c) within this snapshot.
func (st *tableState) valueAt(s *Schema, pos int32, c int) Value {
	if s.Cols[c].Type == TInt {
		return Value{Kind: TInt, Int: st.intAt(pos, c)}
	}
	return Value{Kind: TString, Str: st.strAt(pos, c)}
}

// compareValueAt orders the cell of column c at pos against v within
// this snapshot, with the same cross-kind ordering as Value.Compare.
func (st *tableState) compareValueAt(s *Schema, c int, pos int32, v Value) int {
	return st.valueAt(s, pos, c).Compare(v)
}

// compareAt orders the cells of column c at row positions a and b
// within this snapshot.
func (st *tableState) compareAt(s *Schema, c int, a, b int32) int {
	if s.Cols[c].Type == TInt {
		x, y := st.intAt(a, c), st.intAt(b, c)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
	ca, cb := st.codeAt(a, c), st.codeAt(b, c)
	if ca == cb {
		return 0 // codes are equality-preserving
	}
	return strings.Compare(st.strs[ca], st.strs[cb])
}

// stringDict is a table-wide string dictionary shared by all TString
// columns. The code->string direction lives in tableState.strs; this
// side holds the string->code intern maps, split like the columns into
// a sealed region (an immutable map read lock-free) and a pending
// region (mutated by writers, read under the mutex). Compact merges
// pending into a fresh sealed map.
type stringDict struct {
	sealed atomic.Pointer[map[string]uint32]
	mu     sync.RWMutex
	pend   map[string]uint32
	npend  atomic.Int32
}

func (d *stringDict) init() {
	m := make(map[string]uint32)
	d.sealed.Store(&m)
}

// intern returns the code for s, assigning the next one when the
// string is new; isNew tells the caller to append s to the snapshot's
// strs array. Only writers call intern (serialized by the table's
// write lock), so the sealed and pending maps can be read plainly.
func (d *stringDict) intern(s string, next uint32) (code uint32, isNew bool) {
	if c, ok := (*d.sealed.Load())[s]; ok {
		return c, false
	}
	if c, ok := d.pend[s]; ok {
		return c, false
	}
	d.mu.Lock()
	if d.pend == nil {
		d.pend = make(map[string]uint32)
	}
	d.pend[s] = next
	d.mu.Unlock()
	d.npend.Add(1)
	return next, true
}

// lookup returns the code of s, or false when s never occurs in the
// table (then no row can match it). Safe for concurrent readers: the
// pending counter is read before the sealed map (observing the seal's
// zero implies the merged map is visible), and the slow path reads the
// sealed pointer and the pending map under one read lock, so a lookup
// racing seal() can never pair a pre-merge sealed map with an
// already-cleared pending map and miss a committed entry.
func (d *stringDict) lookup(s string) (uint32, bool) {
	if d.npend.Load() == 0 {
		c, ok := (*d.sealed.Load())[s]
		return c, ok
	}
	d.mu.RLock()
	c, ok := d.pend[s]
	if !ok {
		c, ok = (*d.sealed.Load())[s]
	}
	d.mu.RUnlock()
	return c, ok
}

// seal merges the pending intern entries into a fresh sealed map
// (writers only, under the table write lock). The sealed-pointer swap
// and the pending clear happen atomically with respect to readers'
// locked slow path.
func (d *stringDict) seal() {
	if d.npend.Load() == 0 {
		return
	}
	old := *d.sealed.Load()
	merged := make(map[string]uint32, len(old)+len(d.pend))
	for s, c := range old {
		merged[s] = c
	}
	for s, c := range d.pend {
		merged[s] = c
	}
	d.mu.Lock()
	d.sealed.Store(&merged)
	d.pend = nil
	d.npend.Store(0)
	d.mu.Unlock()
}

// pkIndex is the primary-key map with the same sealed/pending split as
// the dictionary: probes read the sealed map lock-free and consult the
// pending map only while an uncompacted delta exists.
type pkIndex struct {
	sealed atomic.Pointer[map[int64]int32]
	mu     sync.RWMutex
	pend   map[int64]int32
	npend  atomic.Int32
}

func (ix *pkIndex) init() {
	m := make(map[int64]int32)
	ix.sealed.Store(&m)
}

// has reports whether the key is present (writers may call it plainly;
// readers go through get).
func (ix *pkIndex) has(key int64) bool {
	_, ok := ix.get(key)
	return ok
}

func (ix *pkIndex) get(key int64) (int32, bool) {
	// Same race-free read protocol as stringDict.lookup: counter before
	// sealed pointer, slow path consistent under the read lock.
	if ix.npend.Load() == 0 {
		pos, ok := (*ix.sealed.Load())[key]
		return pos, ok
	}
	ix.mu.RLock()
	pos, ok := ix.pend[key]
	if !ok {
		pos, ok = (*ix.sealed.Load())[key]
	}
	ix.mu.RUnlock()
	return pos, ok
}

func (ix *pkIndex) add(key int64, pos int32) {
	ix.mu.Lock()
	if ix.pend == nil {
		ix.pend = make(map[int64]int32)
	}
	ix.pend[key] = pos
	ix.mu.Unlock()
	ix.npend.Add(1)
}

func (ix *pkIndex) seal() {
	if ix.npend.Load() == 0 {
		return
	}
	old := *ix.sealed.Load()
	merged := make(map[int64]int32, len(old)+len(ix.pend))
	for k, v := range old {
		merged[k] = v
	}
	for k, v := range ix.pend {
		merged[k] = v
	}
	ix.mu.Lock()
	ix.sealed.Store(&merged)
	ix.pend = nil
	ix.npend.Store(0)
	ix.mu.Unlock()
}

// dropPendingAtOrAbove removes pending entries at positions >= limit
// (rollback support; writers only, under the table write lock). Rolled-
// back rows are always un-sealed — the caller serializes Compact
// against the batch — so the sealed map never holds a dropped position.
func (ix *pkIndex) dropPendingAtOrAbove(limit int32) {
	ix.mu.Lock()
	var removed int32
	for k, pos := range ix.pend {
		if pos >= limit {
			delete(ix.pend, k)
			removed++
		}
	}
	ix.mu.Unlock()
	if removed > 0 {
		ix.npend.Add(-removed)
	}
}

func (ix *pkIndex) len() int {
	if ix.npend.Load() == 0 {
		return len(*ix.sealed.Load())
	}
	ix.mu.RLock()
	n := len(*ix.sealed.Load()) + len(ix.pend)
	ix.mu.RUnlock()
	return n
}

// Table is an append-only in-memory relation with optional primary-key,
// hash, and ordered secondary indices.
//
// Storage is columnar and versioned: each column is a sealed typed
// array ([]int64 for TInt, dictionary codes for TString) plus a delta
// append buffer, published together as immutable snapshots. Scans walk
// contiguous memory and a tuple is materialized into a Row only at the
// compatibility shims (Row, LookupPK, Scan). Hot paths read cells
// through IntAt/StrAt or the Col views and allocate nothing per row.
//
// Concurrency contract (the live-update model):
//
//   - Any number of readers may run at any time; they never block.
//   - Insert is safe to run concurrently with readers. Writers are
//     serialized against each other by an internal write lock.
//   - A reader sees a consistent snapshot per access: rows appear
//     atomically in insertion order, and a row's cells never change.
//     Different operators of one query may observe different prefixes
//     of an in-flight insert stream; quiesced states are exact.
//   - Index lookups concurrent with an in-flight Insert may not yet
//     return the newest rows, but never return invalid positions.
//   - Compact merges the delta buffers into the sealed arrays without
//     blocking readers; row positions are stable across Compact.
type Table struct {
	Schema *Schema

	wmu   sync.Mutex // serializes writers: Insert, Compact, index builds
	state atomic.Pointer[tableState]

	dict stringDict
	pk   *pkIndex

	mu      sync.RWMutex // guards hash, ordered registries and stats cache
	hash    map[int]*HashIndex
	ordered map[int]*OrderedIndex

	stats *tableStatsCache // per-column incremental statistics
}

// NewTable creates an empty table for the schema.
func NewTable(s *Schema) *Table {
	t := &Table{
		Schema:  s,
		hash:    make(map[int]*HashIndex),
		ordered: make(map[int]*OrderedIndex),
		stats:   newTableStatsCache(len(s.Cols)),
	}
	t.dict.init()
	if s.KeyCol >= 0 {
		t.pk = &pkIndex{}
		t.pk.init()
	}
	t.state.Store(&tableState{
		base:  make([]column, len(s.Cols)),
		delta: make([]column, len(s.Cols)),
	})
	return t
}

// loadState returns the current snapshot.
func (t *Table) loadState() *tableState { return t.state.Load() }

// NumRows returns the current row count.
func (t *Table) NumRows() int { return int(t.loadState().nrows) }

// SealedRows returns how many rows live in the sealed base arrays; the
// remaining NumRows()-SealedRows() rows sit in the delta buffers until
// the next Compact.
func (t *Table) SealedRows() int { return int(t.loadState().sealed) }

// IntAt returns the integer cell at (pos, col c). The column must have
// type TInt.
func (t *Table) IntAt(pos int32, c int) int64 { return t.loadState().intAt(pos, c) }

// StrAt returns the string cell at (pos, col c) without copying. The
// column must have type TString.
func (t *Table) StrAt(pos int32, c int) string { return t.loadState().strAt(pos, c) }

// CodeAt returns the dictionary code of the string cell at (pos, col
// c). Codes are equality-preserving but NOT order-preserving.
func (t *Table) CodeAt(pos int32, c int) uint32 { return t.loadState().codeAt(pos, c) }

// ValueAt materializes the cell at (pos, col c) as a Value. The string
// payload is shared with the dictionary, so this allocates nothing.
func (t *Table) ValueAt(pos int32, c int) Value {
	return t.loadState().valueAt(t.Schema, pos, c)
}

// ColView is a zero-copy read-only view of one column, for tight loops
// that index cells by row position without going through the table. A
// view is a snapshot: rows inserted after Col returns are not visible
// through it (use the table accessors to chase the live tail).
type ColView struct {
	Kind   ColType
	sealed int32
	ints   []int64
	dints  []int64
	codes  []uint32
	dcodes []uint32
	strs   []string
}

// Col returns a view of column c.
func (t *Table) Col(c int) ColView {
	st := t.loadState()
	v := ColView{Kind: t.Schema.Cols[c].Type, sealed: st.sealed}
	if v.Kind == TInt {
		v.ints = st.base[c].ints
		v.dints = st.delta[c].ints
	} else {
		v.codes = st.base[c].codes
		v.dcodes = st.delta[c].codes
		v.strs = st.strs
	}
	return v
}

// Len returns the number of rows in the view.
func (v ColView) Len() int {
	if v.Kind == TInt {
		return int(v.sealed) + len(v.dints)
	}
	return int(v.sealed) + len(v.dcodes)
}

// Int returns the integer cell at pos (TInt columns).
func (v ColView) Int(pos int32) int64 {
	if pos < v.sealed {
		return v.ints[pos]
	}
	return v.dints[pos-v.sealed]
}

// Code returns the dictionary code at pos (TString columns).
func (v ColView) Code(pos int32) uint32 {
	if pos < v.sealed {
		return v.codes[pos]
	}
	return v.dcodes[pos-v.sealed]
}

// Str returns the string cell at pos (TString columns).
func (v ColView) Str(pos int32) string { return v.strs[v.Code(pos)] }

// Value materializes the cell at pos.
func (v ColView) Value(pos int32) Value {
	if v.Kind == TInt {
		return Value{Kind: TInt, Int: v.Int(pos)}
	}
	return Value{Kind: TString, Str: v.Str(pos)}
}

// appendRowState appends the cells of the row at pos (within st) to dst.
func (t *Table) appendRowState(st *tableState, dst Row, pos int32) Row {
	for c := range t.Schema.Cols {
		if t.Schema.Cols[c].Type == TInt {
			dst = append(dst, Value{Kind: TInt, Int: st.intAt(pos, c)})
		} else {
			dst = append(dst, Value{Kind: TString, Str: st.strAt(pos, c)})
		}
	}
	return dst
}

// AppendRow appends the cells of the row at pos to dst and returns the
// extended slice — the allocation-free way to materialize a tuple into
// a reusable buffer (pass dst[:0] to overwrite a previous row).
func (t *Table) AppendRow(dst Row, pos int32) Row {
	return t.appendRowState(t.loadState(), dst, pos)
}

// Row materializes the row stored at position pos. It is a
// compatibility shim over the columnar layout: each call allocates a
// fresh Row; position-addressed readers should prefer IntAt/StrAt,
// Col views, or AppendRow with a reusable buffer.
func (t *Table) Row(pos int32) Row {
	return t.AppendRow(make(Row, 0, len(t.Schema.Cols)), pos)
}

// Insert appends a row, maintaining all indices. It rejects rows that
// do not match the schema or that duplicate the primary key. Insert is
// safe to run concurrently with readers; concurrent Inserts serialize
// on the table's write lock. The row lands in the delta buffers until
// the next Compact.
func (t *Table) Insert(r Row) error {
	if err := t.Schema.CheckRow(r); err != nil {
		return err
	}
	// The injection point sits before any mutation: a firing hit (error
	// or panic) rejects the row cleanly, leaving the table untouched —
	// batch-level atomicity is the caller's rollback via TruncateTo.
	if err := faultInsert.Hit(); err != nil {
		return err
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()

	st := t.loadState()
	pos := st.nrows
	if t.pk != nil {
		key := r[t.Schema.KeyCol].Int
		if t.pk.has(key) {
			return fmt.Errorf("relstore: table %q: duplicate primary key %d", t.Schema.Name, key)
		}
	}

	// Build the successor snapshot: same base, delta buffers extended by
	// one cell per column (in-place growth of a shared backing array is
	// invisible to readers holding shorter snapshots), dictionary
	// extended by any newly interned strings.
	ns := &tableState{
		sealed:     st.sealed,
		nrows:      st.nrows + 1,
		base:       st.base,
		delta:      make([]column, len(st.delta)),
		strs:       st.strs,
		sealedStrs: st.sealedStrs,
	}
	copy(ns.delta, st.delta)
	for c := range r {
		if r[c].Kind == TInt {
			ns.delta[c].ints = append(ns.delta[c].ints, r[c].Int)
		} else {
			code, isNew := t.dict.intern(r[c].Str, uint32(len(ns.strs)))
			if isNew {
				ns.strs = append(ns.strs, r[c].Str)
			}
			ns.delta[c].codes = append(ns.delta[c].codes, code)
		}
	}
	t.state.Store(ns)
	if t.pk != nil {
		t.pk.add(r[t.Schema.KeyCol].Int, pos)
	}

	// Incremental index maintenance: the new position lands in each
	// index's pending buffer (merged into the sealed structures by the
	// next Compact). The snapshot is published first, so a concurrent
	// probe that already sees the pending entry can always resolve the
	// position through the table.
	t.mu.RLock()
	for col, ix := range t.hash {
		var key int64
		if t.Schema.Cols[col].Type == TInt {
			key = r[col].Int
		} else {
			key = int64(ns.delta[col].codes[pos-ns.sealed])
		}
		ix.addPending(key, pos)
	}
	for _, ix := range t.ordered {
		ix.add(pos)
	}
	t.mu.RUnlock()
	return nil
}

// MustInsert is Insert that panics on error; for loaders of generated data.
func (t *Table) MustInsert(vals ...Value) {
	if err := t.Insert(Row(vals)); err != nil {
		panic(err)
	}
}

// Compact merges the delta buffers into the sealed base arrays: the
// typed arrays are rewritten once, the dictionary and primary-key
// pending maps are merged into fresh sealed maps, and every secondary
// index folds its pending entries in. Row positions are stable, so
// statistics and index entries stay valid. Readers are never blocked —
// they keep their snapshots — and Compact serializes with other
// writers. Call it after a burst of Inserts to restore lock-free
// probes and branch-free scans.
func (t *Table) Compact() {
	// A firing error here skips the compaction — a no-op is always a
	// legal outcome of Compact. A panic propagates to the caller's
	// containment boundary with the table untouched.
	if err := faultCompact.Hit(); err != nil {
		return
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()

	st := t.loadState()
	if st.sealed != st.nrows {
		ns := &tableState{
			sealed:     st.nrows,
			nrows:      st.nrows,
			base:       make([]column, len(st.base)),
			delta:      make([]column, len(st.base)),
			strs:       st.strs,
			sealedStrs: len(st.strs),
		}
		for c := range st.base {
			if t.Schema.Cols[c].Type == TInt {
				merged := make([]int64, 0, st.nrows)
				merged = append(merged, st.base[c].ints...)
				merged = append(merged, st.delta[c].ints...)
				ns.base[c].ints = merged
			} else {
				merged := make([]uint32, 0, st.nrows)
				merged = append(merged, st.base[c].codes...)
				merged = append(merged, st.delta[c].codes...)
				ns.base[c].codes = merged
			}
		}
		t.state.Store(ns)
	}

	// Mid-compaction injection: the array merge above has published but
	// the dictionary/index merges below have not run. Every intermediate
	// state is consistent (each merge step is independently atomic and
	// row positions are stable), so a panic here must leave a readable
	// table — exactly what the chaos harness asserts.
	if err := faultCompactMid.Hit(); err != nil {
		return
	}

	t.dict.seal()
	if t.pk != nil {
		t.pk.seal()
	}
	t.mu.RLock()
	for _, ix := range t.hash {
		ix.merge()
	}
	for _, ix := range t.ordered {
		ix.flush()
	}
	t.mu.RUnlock()
}

// TruncateTo rolls the table back to its first n rows — the rollback
// half of batch-atomic application: a mutation batch that fails mid-way
// truncates every touched table to its pre-batch count, leaving no
// trace of the partial batch. Only delta (un-sealed) rows can be
// dropped; the caller guarantees no Compact sealed the doomed rows
// (the DB serializes Compact against mutation batches).
//
// Snapshot discipline under rollback: concurrent readers may hold
// snapshots that include the dropped rows — those snapshots stay fully
// readable (their arrays are never mutated). The successor state
// REBUILDS the delta arrays on fresh backing rather than truncating in
// place, because a future Insert appending into the shared backing
// array would otherwise overwrite cells a mid-batch reader can still
// see. Interned dictionary strings of dropped rows are deliberately
// kept: codes stay consistent, re-inserting the same strings reuses
// them, and an orphan dictionary entry is invisible to queries.
func (t *Table) TruncateTo(n int) error {
	t.wmu.Lock()
	defer t.wmu.Unlock()

	st := t.loadState()
	limit := int32(n)
	if limit >= st.nrows {
		return nil
	}
	if limit < st.sealed {
		return fmt.Errorf("relstore: table %q: cannot truncate to %d below the sealed watermark %d",
			t.Schema.Name, n, st.sealed)
	}

	// Drop the doomed rows' pending primary-key entries (all of them
	// are pending: the rows were never sealed).
	if t.pk != nil {
		t.pk.dropPendingAtOrAbove(limit)
	}

	keep := int(limit - st.sealed)
	ns := &tableState{
		sealed:     st.sealed,
		nrows:      limit,
		base:       st.base,
		delta:      make([]column, len(st.delta)),
		strs:       st.strs,
		sealedStrs: st.sealedStrs,
	}
	for c := range st.delta {
		if len(st.delta[c].ints) > 0 {
			ns.delta[c].ints = append(make([]int64, 0, keep), st.delta[c].ints[:keep]...)
		}
		if len(st.delta[c].codes) > 0 {
			ns.delta[c].codes = append(make([]uint32, 0, keep), st.delta[c].codes[:keep]...)
		}
	}
	t.state.Store(ns)

	t.mu.RLock()
	for _, ix := range t.hash {
		ix.dropAtOrAbove(limit)
	}
	for _, ix := range t.ordered {
		ix.dropAtOrAbove(limit)
	}
	t.mu.RUnlock()

	// Statistics watermarks may cover dropped rows; reset the cache so
	// the next Stats() call rebuilds from the truncated state.
	t.mu.Lock()
	t.stats = newTableStatsCache(len(t.Schema.Cols))
	t.mu.Unlock()
	return nil
}

// keyFor maps a lookup value to the hash-index key space of column c.
// ok=false means no row of the table can equal v (a string absent from
// the dictionary, or a kind mismatch).
func (t *Table) keyFor(c int, v Value) (int64, bool) {
	if t.Schema.Cols[c].Type == TInt {
		if v.Kind != TInt {
			return 0, false
		}
		return v.Int, true
	}
	if v.Kind != TString {
		return 0, false
	}
	code, ok := t.dict.lookup(v.Str)
	return int64(code), ok
}

// compareValueAt orders the cell of column c at pos against v, with the
// same cross-kind ordering as Value.Compare.
func (t *Table) compareValueAt(c int, pos int32, v Value) int {
	return t.ValueAt(pos, c).Compare(v)
}

// PKPos returns the row position of the row with the given primary-key
// value — the allocation-free LookupPK.
func (t *Table) PKPos(id int64) (int32, bool) {
	if t.pk == nil {
		return 0, false
	}
	return t.pk.get(id)
}

// LookupPK returns (materializing) the row with the given primary-key
// value. Hot paths should use PKPos with IntAt/StrAt or EvalAt instead.
func (t *Table) LookupPK(id int64) (Row, bool) {
	pos, ok := t.PKPos(id)
	if !ok {
		return nil, false
	}
	return t.Row(pos), true
}

// HasPK reports whether a row with the given primary key exists.
func (t *Table) HasPK(id int64) bool {
	if t.pk == nil {
		return false
	}
	return t.pk.has(id)
}

// CreateHashIndex builds (or returns) an equality index on the column.
// It is idempotent and safe to call from concurrent query plans: the
// first caller builds the index under the table's write lock (so no
// concurrent Insert can fall between the build scan and registration),
// later callers get the same index back.
func (t *Table) CreateHashIndex(col string) (*HashIndex, error) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relstore: table %q: no column %q", t.Schema.Name, col)
	}
	t.mu.RLock()
	ix, have := t.hash[c]
	t.mu.RUnlock()
	if have {
		return ix, nil
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.mu.RLock()
	ix, have = t.hash[c]
	t.mu.RUnlock()
	if have {
		return ix, nil
	}
	st := t.loadState()
	ix = newHashIndex(t, c)
	m := make(map[int64][]int32)
	if t.Schema.Cols[c].Type == TInt {
		for pos := int32(0); pos < st.nrows; pos++ {
			k := st.intAt(pos, c)
			m[k] = append(m[k], pos)
		}
	} else {
		for pos := int32(0); pos < st.nrows; pos++ {
			k := int64(st.codeAt(pos, c))
			m[k] = append(m[k], pos)
		}
	}
	ix.sealed.Store(&m)
	t.mu.Lock()
	t.hash[c] = ix
	t.mu.Unlock()
	return ix, nil
}

// CreateOrderedIndex builds (or returns) an ordered index on the column.
// Like CreateHashIndex it is idempotent under the table's write lock.
func (t *Table) CreateOrderedIndex(col string) (*OrderedIndex, error) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relstore: table %q: no column %q", t.Schema.Name, col)
	}
	t.mu.RLock()
	ix, have := t.ordered[c]
	t.mu.RUnlock()
	if have {
		return ix, nil
	}
	t.wmu.Lock()
	defer t.wmu.Unlock()
	t.mu.RLock()
	ix, have = t.ordered[c]
	t.mu.RUnlock()
	if have {
		return ix, nil
	}
	ix = newOrderedIndex(t, c)
	t.mu.Lock()
	t.ordered[c] = ix
	t.mu.Unlock()
	return ix, nil
}

// HashIndexOn returns the hash index on the column, if one exists.
func (t *Table) HashIndexOn(col string) (*HashIndex, bool) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, false
	}
	t.mu.RLock()
	ix, ok := t.hash[c]
	t.mu.RUnlock()
	return ix, ok
}

// OrderedIndexOn returns the ordered index on the column, if one exists.
func (t *Table) OrderedIndexOn(col string) (*OrderedIndex, bool) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, false
	}
	t.mu.RLock()
	ix, ok := t.ordered[c]
	t.mu.RUnlock()
	return ix, ok
}

// Lookup returns positions of rows whose column equals v, using a hash
// index when available and a column scan otherwise. The fallback walks
// the typed arrays directly: no Value is constructed per row, and for a
// string column the probe is one dictionary lookup plus a code scan.
func (t *Table) Lookup(col string, v Value) ([]int32, error) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relstore: table %q: no column %q", t.Schema.Name, col)
	}
	t.mu.RLock()
	ix, have := t.hash[c]
	t.mu.RUnlock()
	if have {
		return ix.Lookup(v), nil
	}
	st := t.loadState()
	var out []int32
	if t.Schema.Cols[c].Type == TInt {
		if v.Kind != TInt {
			return nil, nil
		}
		for pos := int32(0); pos < st.nrows; pos++ {
			if st.intAt(pos, c) == v.Int {
				out = append(out, pos)
			}
		}
		return out, nil
	}
	if v.Kind != TString {
		return nil, nil
	}
	code, ok := t.dict.lookup(v.Str)
	if !ok {
		return nil, nil // string never interned: no row can match
	}
	for pos := int32(0); pos < st.nrows; pos++ {
		if st.codeAt(pos, c) == code {
			out = append(out, pos)
		}
	}
	return out, nil
}

// Scan visits every row in insertion order until visit returns false.
// The Row passed to visit is a single buffer reused across calls: it is
// valid only during the visit and must be cloned to be retained. The
// scan covers the rows present when it started (a snapshot).
// Position-only readers should prefer ScanPos with IntAt/StrAt.
func (t *Table) Scan(visit func(pos int32, r Row) bool) {
	st := t.loadState()
	buf := make(Row, 0, len(t.Schema.Cols))
	for pos := int32(0); pos < st.nrows; pos++ {
		buf = t.appendRowState(st, buf[:0], pos)
		if !visit(pos, buf) {
			return
		}
	}
}

// ScanPos visits every row position in insertion order until visit
// returns false, materializing nothing. The scan covers the rows
// present when it started (a snapshot).
func (t *Table) ScanPos(visit func(pos int32) bool) {
	st := t.loadState()
	for pos := int32(0); pos < st.nrows; pos++ {
		if !visit(pos) {
			return
		}
	}
}

// ApproxBytes estimates the storage footprint of the table in bytes:
// the sealed columnar arrays and the delta append buffers (8 bytes per
// TInt cell, 4 per TString code), the shared string dictionary —
// sealed and delta-era entries alike (header + payload + intern-map
// entry per distinct string) — the primary-key and hash-index entries
// including their pending-merge buffers, and the ordered indexes'
// permutations plus pending blocks. Used to reproduce the paper's
// space-requirement comparison (Table 1) and to keep memory reporting
// honest while writes are in flight.
func (t *Table) ApproxBytes() int64 {
	st := t.loadState()
	var b int64
	for c := range st.base {
		if t.Schema.Cols[c].Type == TInt {
			b += 8 * int64(len(st.base[c].ints)+len(st.delta[c].ints))
		} else {
			b += 4 * int64(len(st.base[c].codes)+len(st.delta[c].codes))
		}
	}
	for _, s := range st.strs {
		b += 16 + int64(len(s)) // string header + payload (stored once)
		b += 24                 // intern-map entry (string header + code + overhead)
	}
	if t.pk != nil {
		b += int64(t.pk.len()) * 12
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, ix := range t.hash {
		b += ix.approxBytes()
	}
	for _, ix := range t.ordered {
		b += ix.approxBytes()
	}
	return b
}

// DeltaBytes reports the footprint of the not-yet-compacted write
// state alone: delta column buffers, delta-era dictionary strings, and
// every pending-merge buffer (primary key, hash and ordered indexes).
// Compact folds all of it into the sealed structures.
func (t *Table) DeltaBytes() int64 {
	st := t.loadState()
	var b int64
	for c := range st.delta {
		b += 8*int64(len(st.delta[c].ints)) + 4*int64(len(st.delta[c].codes))
	}
	for _, s := range st.strs[st.sealedStrs:] {
		b += 16 + int64(len(s)) + 24
	}
	if t.pk != nil {
		b += int64(t.pk.npend.Load()) * 12
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, ix := range t.hash {
		b += ix.pendingBytes()
	}
	for _, ix := range t.ordered {
		b += ix.pendingBytes()
	}
	return b
}
