package relstore

import (
	"fmt"
	"sync"
)

// Table is an append-only in-memory relation with optional primary-key,
// hash, and ordered secondary indices.
//
// A fully built table is safe for concurrent readers: index creation is
// idempotent and mutex-guarded, so simultaneous query plans may race to
// CreateHashIndex without corrupting the index maps. Insert is NOT safe
// to run concurrently with readers or other inserts; loading and
// querying are distinct phases, as in the paper's offline/online split.
type Table struct {
	Schema *Schema

	rows []Row
	pk   map[int64]int32

	mu      sync.RWMutex // guards hash, ordered, stats
	hash    map[int]*HashIndex
	ordered map[int]*OrderedIndex

	stats *TableStats // lazily computed, dropped on insert
}

// NewTable creates an empty table for the schema.
func NewTable(s *Schema) *Table {
	t := &Table{
		Schema:  s,
		hash:    make(map[int]*HashIndex),
		ordered: make(map[int]*OrderedIndex),
	}
	if s.KeyCol >= 0 {
		t.pk = make(map[int64]int32)
	}
	return t
}

// NumRows returns the current row count.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns the row stored at position pos. The row is shared; callers
// must not mutate it.
func (t *Table) Row(pos int32) Row { return t.rows[pos] }

// Insert appends a row, maintaining all indices. It rejects rows that do
// not match the schema or that duplicate the primary key.
func (t *Table) Insert(r Row) error {
	if err := t.Schema.CheckRow(r); err != nil {
		return err
	}
	pos := int32(len(t.rows))
	if t.pk != nil {
		key := r[t.Schema.KeyCol].Int
		if _, dup := t.pk[key]; dup {
			return fmt.Errorf("relstore: table %q: duplicate primary key %d", t.Schema.Name, key)
		}
		t.pk[key] = pos
	}
	t.rows = append(t.rows, r)
	t.mu.Lock()
	for col, ix := range t.hash {
		ix.add(r[col], pos)
	}
	for _, ix := range t.ordered {
		ix.add(pos)
	}
	t.stats = nil
	t.mu.Unlock()
	return nil
}

// MustInsert is Insert that panics on error; for loaders of generated data.
func (t *Table) MustInsert(vals ...Value) {
	if err := t.Insert(Row(vals)); err != nil {
		panic(err)
	}
}

// LookupPK returns the row with the given primary-key value.
func (t *Table) LookupPK(id int64) (Row, bool) {
	if t.pk == nil {
		return nil, false
	}
	pos, ok := t.pk[id]
	if !ok {
		return nil, false
	}
	return t.rows[pos], true
}

// HasPK reports whether a row with the given primary key exists.
func (t *Table) HasPK(id int64) bool {
	if t.pk == nil {
		return false
	}
	_, ok := t.pk[id]
	return ok
}

// CreateHashIndex builds (or returns) an equality index on the column.
// It is idempotent and safe to call from concurrent query plans: the
// first caller builds the index under the table lock, later callers get
// the same index back.
func (t *Table) CreateHashIndex(col string) (*HashIndex, error) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relstore: table %q: no column %q", t.Schema.Name, col)
	}
	t.mu.RLock()
	ix, have := t.hash[c]
	t.mu.RUnlock()
	if have {
		return ix, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, have := t.hash[c]; have {
		return ix, nil
	}
	ix = newHashIndex(c)
	for pos, r := range t.rows {
		ix.add(r[c], int32(pos))
	}
	t.hash[c] = ix
	return ix, nil
}

// CreateOrderedIndex builds (or returns) an ordered index on the column.
// Like CreateHashIndex it is idempotent under the table lock.
func (t *Table) CreateOrderedIndex(col string) (*OrderedIndex, error) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relstore: table %q: no column %q", t.Schema.Name, col)
	}
	t.mu.RLock()
	ix, have := t.ordered[c]
	t.mu.RUnlock()
	if have {
		return ix, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if ix, have := t.ordered[c]; have {
		return ix, nil
	}
	ix = newOrderedIndex(t, c)
	t.ordered[c] = ix
	return ix, nil
}

// HashIndexOn returns the hash index on the column, if one exists.
func (t *Table) HashIndexOn(col string) (*HashIndex, bool) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, false
	}
	t.mu.RLock()
	ix, ok := t.hash[c]
	t.mu.RUnlock()
	return ix, ok
}

// OrderedIndexOn returns the ordered index on the column, if one exists.
func (t *Table) OrderedIndexOn(col string) (*OrderedIndex, bool) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, false
	}
	t.mu.RLock()
	ix, ok := t.ordered[c]
	t.mu.RUnlock()
	return ix, ok
}

// Lookup returns positions of rows whose column equals v, using a hash
// index when available and a scan otherwise.
func (t *Table) Lookup(col string, v Value) ([]int32, error) {
	c, ok := t.Schema.ColIndex(col)
	if !ok {
		return nil, fmt.Errorf("relstore: table %q: no column %q", t.Schema.Name, col)
	}
	t.mu.RLock()
	ix, have := t.hash[c]
	t.mu.RUnlock()
	if have {
		return ix.Lookup(v), nil
	}
	var out []int32
	for pos, r := range t.rows {
		if r[c].Equal(v) {
			out = append(out, int32(pos))
		}
	}
	return out, nil
}

// Scan visits every row in insertion order until visit returns false.
func (t *Table) Scan(visit func(pos int32, r Row) bool) {
	for pos, r := range t.rows {
		if !visit(int32(pos), r) {
			return
		}
	}
}

// ApproxBytes estimates the storage footprint of the table in bytes,
// counting values, rows, and index entries. Used to reproduce the
// paper's space-requirement comparison (Table 1).
func (t *Table) ApproxBytes() int64 {
	var b int64
	for _, r := range t.rows {
		b += 24 // slice header
		for _, v := range r {
			b += 24 + int64(len(v.Str)) // Value struct + string bytes
		}
	}
	if t.pk != nil {
		b += int64(len(t.pk)) * 12
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, ix := range t.hash {
		b += int64(len(ix.m)) * 32
		for _, ps := range ix.m {
			b += int64(len(ps)) * 4
		}
	}
	for _, ix := range t.ordered {
		b += int64(ix.Len()) * 4
	}
	return b
}
