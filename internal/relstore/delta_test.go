package relstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// This file tests the live-update subsystem of the storage engine:
// delta columns absorbing inserts while readers run, Compact folding
// deltas into the sealed arrays without moving rows, incremental index
// and statistics maintenance, and the dictionary's append-only code
// assignment under concurrent growth. CI runs everything here with
// -race.

// expectRow derives the deterministic row inserted at position pos by
// the live-writer tests, so readers can verify cells without sharing
// state with the writer.
func expectRow(pos int32) Row {
	vocab := [...]string{
		"ubiquitin conjugating enzyme", "hypothetical protein",
		"enzyme variant", "mRNA", "zinc finger protein",
		fmt.Sprintf("unique desc %d", pos), // every 6th row grows the dictionary
	}
	return Row{
		IntVal(int64(pos)),
		IntVal(int64(pos % 7)),
		StrVal(vocab[pos%6]),
	}
}

func liveSchema() *Schema {
	return MustSchema("Live", []Column{
		{Name: "ID", Type: TInt},
		{Name: "grp", Type: TInt},
		{Name: "desc", Type: TString},
	}, "ID")
}

// TestLiveInsertConcurrentReaders races one writer inserting rows (with
// periodic Compacts) against many readers that scan, probe the hash and
// primary-key indexes, walk the ordered index, read column views, and
// pull statistics. Every reader checks prefix consistency: whatever row
// count it observes, all cells below it must match the deterministic
// row content, and index probes must resolve to valid positions.
func TestLiveInsertConcurrentReaders(t *testing.T) {
	const rows = 3000
	tab := NewTable(liveSchema())
	// Seed a sealed region plus live indexes before the race starts.
	for pos := int32(0); pos < 500; pos++ {
		if err := tab.Insert(expectRow(pos)); err != nil {
			t.Fatal(err)
		}
	}
	tab.Compact()
	if _, err := tab.CreateHashIndex("grp"); err != nil {
		t.Fatal(err)
	}
	ixo, err := tab.CreateOrderedIndex("desc")
	if err != nil {
		t.Fatal(err)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer done.Store(true)
		for pos := int32(500); pos < rows; pos++ {
			if err := tab.Insert(expectRow(pos)); err != nil {
				t.Errorf("insert %d: %v", pos, err)
				return
			}
			if pos%701 == 0 {
				tab.Compact()
			}
		}
	}()

	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for !done.Load() {
				switch w % 4 {
				case 0: // positional scan: prefix must match the generator
					n := 0
					tab.ScanPos(func(pos int32) bool {
						want := expectRow(pos)
						if tab.IntAt(pos, 0) != want[0].Int || tab.StrAt(pos, 2) != want[2].Str {
							t.Errorf("reader %d: cell mismatch at pos %d", w, pos)
							return false
						}
						n++
						return true
					})
					if n < 500 {
						t.Errorf("reader %d: scan saw %d rows, below the seeded 500", w, n)
					}
				case 1: // hash + pk probes resolve to valid, matching rows
					ix, _ := tab.HashIndexOn("grp")
					g := int64(rng.Intn(7))
					for _, pos := range ix.LookupInt(g) {
						if tab.IntAt(pos, 1) != g {
							t.Errorf("reader %d: probe returned pos %d with grp %d, want %d",
								w, pos, tab.IntAt(pos, 1), g)
						}
					}
					id := int64(rng.Intn(rows))
					if pos, ok := tab.PKPos(id); ok && tab.IntAt(pos, 0) != id {
						t.Errorf("reader %d: PKPos(%d) resolved to row %d", w, id, tab.IntAt(pos, 0))
					}
				case 2: // ordered scan: non-decreasing values, valid positions
					prev := ""
					first := true
					ixo.Scan(false, func(pos int32) bool {
						s := tab.StrAt(pos, 2)
						if !first && s < prev {
							t.Errorf("reader %d: ordered scan went backwards", w)
							return false
						}
						prev, first = s, false
						return true
					})
				case 3: // views and statistics on a consistent snapshot
					grp := tab.Col(1)
					var sum, want int64
					for pos := 0; pos < grp.Len(); pos++ {
						sum += grp.Int(int32(pos))
						want += int64(int32(pos) % 7)
					}
					if sum != want {
						t.Errorf("reader %d: view sum %d, want %d", w, sum, want)
					}
					st := tab.Stats()
					if st.Rows < 500 || st.Col(1).NDV > 7 {
						t.Errorf("reader %d: stats rows=%d ndv=%d", w, st.Rows, st.Col(1).NDV)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: everything must be exact.
	tab.Compact()
	if tab.NumRows() != rows || tab.SealedRows() != rows {
		t.Fatalf("rows = %d sealed = %d, want %d", tab.NumRows(), tab.SealedRows(), rows)
	}
	for pos := int32(0); pos < rows; pos++ {
		if !reflect.DeepEqual(tab.Row(pos), expectRow(pos)) {
			t.Fatalf("row %d diverges after quiesce", pos)
		}
	}
}

// TestCompactEquivalence interleaves inserts and Compacts and checks
// that every read path stays byte-identical to the reference row store
// throughout: positions are stable across Compact, indexes and
// statistics fold their pending state in without drift.
func TestCompactEquivalence(t *testing.T) {
	tab, ref := genPair(11, 300)
	if _, err := tab.CreateHashIndex("grp"); err != nil {
		t.Fatal(err)
	}
	ixo, err := tab.CreateOrderedIndex("desc")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	vocab := []string{"mRNA", "enzyme variant", "compacted token", "zinc finger protein"}
	check := func(stage string) {
		t.Helper()
		if tab.NumRows() != len(ref.rows) {
			t.Fatalf("%s: rows %d, want %d", stage, tab.NumRows(), len(ref.rows))
		}
		for pos, r := range ref.rows {
			if !reflect.DeepEqual(tab.Row(int32(pos)), r) {
				t.Fatalf("%s: row %d diverges", stage, pos)
			}
		}
		ix, _ := tab.HashIndexOn("grp")
		for g := int64(0); g < 7; g++ {
			got := append([]int32(nil), ix.LookupInt(g)...)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if want := ref.lookup(1, IntVal(g)); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: probe grp=%d diverges: %v vs %v", stage, g, got, want)
			}
		}
		var asc []int32
		ixo.Scan(false, func(pos int32) bool { asc = append(asc, pos); return true })
		if want := ref.orderedPerm(2); !reflect.DeepEqual(asc, want) {
			t.Fatalf("%s: ordered scan diverges", stage)
		}
		st := tab.Stats()
		for c := range ref.schema.Cols {
			got, want := st.Col(c), ref.stats(c)
			if got.NDV != want.NDV || got.Min != want.Min || got.Max != want.Max ||
				!reflect.DeepEqual(got.Freq, want.Freq) ||
				!reflect.DeepEqual(got.TokenFreq, want.TokenFreq) {
				t.Fatalf("%s: stats col %d diverge from row-store pass", stage, c)
			}
		}
	}
	check("initial")
	next := int64(1000)
	for round := 0; round < 4; round++ {
		for i := 0; i < 37; i++ {
			r := Row{IntVal(next), IntVal(int64(rng.Intn(7))), StrVal(vocab[rng.Intn(len(vocab))])}
			next++
			if err := tab.Insert(r); err != nil {
				t.Fatal(err)
			}
			ref.insert(r)
		}
		check(fmt.Sprintf("round %d pre-compact", round))
		sealed := tab.SealedRows()
		tab.Compact()
		if tab.SealedRows() != tab.NumRows() || tab.SealedRows() <= sealed {
			t.Fatalf("round %d: compact left sealed=%d of %d", round, tab.SealedRows(), tab.NumRows())
		}
		if db := tab.DeltaBytes(); db != 0 {
			t.Fatalf("round %d: DeltaBytes = %d after Compact, want 0", round, db)
		}
		check(fmt.Sprintf("round %d post-compact", round))
	}
}

// TestApproxBytesDelta checks that memory reporting stays honest under
// writes: the delta buffers and pending-merge state are included in
// ApproxBytes while uncompacted, and Compact conserves the accounted
// payload (same cells, same dictionary, same index entries — just
// sealed).
func TestApproxBytesDelta(t *testing.T) {
	tab, _ := genPair(13, 400)
	if _, err := tab.CreateHashIndex("grp"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateOrderedIndex("desc"); err != nil {
		t.Fatal(err)
	}
	tab.Compact()
	sealedBytes := tab.ApproxBytes()
	if tab.DeltaBytes() != 0 {
		t.Fatalf("DeltaBytes = %d on a compacted table", tab.DeltaBytes())
	}
	// Grow a delta: every added row must be accounted while pending.
	for i := 0; i < 50; i++ {
		tab.MustInsert(IntVal(int64(5000+i)), IntVal(int64(i%7)), StrVal(fmt.Sprintf("fresh string %d", i)))
	}
	grown := tab.ApproxBytes()
	delta := tab.DeltaBytes()
	if delta == 0 {
		t.Fatal("DeltaBytes = 0 with 50 uncompacted rows")
	}
	// 50 rows x (2 int cells + 1 code) plus 50 new dictionary strings
	// plus pk/hash/ordered pending entries.
	minPayload := int64(50 * (8 + 8 + 4))
	if grown-sealedBytes < minPayload {
		t.Fatalf("ApproxBytes grew by %d, want at least %d", grown-sealedBytes, minPayload)
	}
	tab.Compact()
	if tab.DeltaBytes() != 0 {
		t.Fatalf("DeltaBytes = %d after Compact", tab.DeltaBytes())
	}
	// Compact conserves the payload; only the duplicated per-key
	// overhead of pending buffers (postings for keys that already exist
	// sealed) may disappear.
	compacted := tab.ApproxBytes()
	if compacted > grown || compacted < sealedBytes+minPayload {
		t.Fatalf("ApproxBytes after Compact = %d, want within [%d, %d]",
			compacted, sealedBytes+minPayload, grown)
	}
}

// TestDictionaryGrowthProperty is the property test for dictionary
// round-tripping under growth: while a writer interleaves appends of
// new and repeated strings, readers continuously verify that codes
// never alias (two strings sharing a code), never reorder (a string's
// code never changes once assigned), and always round-trip through
// StrAt/CodeAt. Run with -race in CI.
func TestDictionaryGrowthProperty(t *testing.T) {
	s := MustSchema("Dict", []Column{{Name: "s", Type: TString}}, "")
	tab := NewTable(s)
	// strFor is the deterministic string at row pos: every third row
	// repeats an earlier value, the rest are fresh.
	strFor := func(pos int32) string {
		if pos%3 == 1 && pos > 3 {
			return fmt.Sprintf("dict entry %d", (pos-1)/3)
		}
		return fmt.Sprintf("dict entry %d", pos)
	}
	const rows = 4000
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		for pos := int32(0); pos < rows; pos++ {
			tab.MustInsert(StrVal(strFor(pos)))
			if pos%997 == 0 {
				tab.Compact()
			}
		}
	}()
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			codeOf := map[string]uint32{} // reader-local: string -> first observed code
			posCode := map[int32]uint32{} // reader-local: pos -> first observed code
			strOf := map[uint32]string{}  // reader-local: code -> string
			for !done.Load() {
				n := int32(tab.NumRows())
				for pos := int32(w); pos < n; pos += 3 {
					s := tab.StrAt(pos, 0)
					c := tab.CodeAt(pos, 0)
					if want := strFor(pos); s != want {
						t.Errorf("reader %d: StrAt(%d) = %q, want %q", w, pos, s, want)
						return
					}
					if prev, ok := codeOf[s]; ok && prev != c {
						t.Errorf("reader %d: string %q changed code %d -> %d", w, s, prev, c)
						return
					}
					codeOf[s] = c
					if prev, ok := posCode[pos]; ok && prev != c {
						t.Errorf("reader %d: pos %d changed code %d -> %d", w, pos, prev, c)
						return
					}
					posCode[pos] = c
					if prev, ok := strOf[c]; ok && prev != s {
						t.Errorf("reader %d: code %d aliases %q and %q", w, c, prev, s)
						return
					}
					strOf[c] = s
					// lookup must agree with the cell's code.
					if got, err := tab.Lookup("s", StrVal(s)); err != nil || len(got) == 0 {
						t.Errorf("reader %d: Lookup(%q) = %v, %v", w, s, got, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Quiesced: full bijection check.
	tab.Compact()
	byCode := map[uint32]string{}
	byStr := map[string]uint32{}
	for pos := int32(0); pos < rows; pos++ {
		s, c := tab.StrAt(pos, 0), tab.CodeAt(pos, 0)
		if s != strFor(pos) {
			t.Fatalf("pos %d: %q, want %q", pos, s, strFor(pos))
		}
		if prev, ok := byCode[c]; ok && prev != s {
			t.Fatalf("code %d aliases %q and %q", c, prev, s)
		}
		if prev, ok := byStr[s]; ok && prev != c {
			t.Fatalf("string %q has codes %d and %d", s, prev, c)
		}
		byCode[c], byStr[s] = s, c
	}
}

// FuzzDictionaryRoundTrip fuzzes interleaved appends and reads over
// arbitrary string payloads: after inserting each string the cell must
// round-trip, codes must stay stable, and equal strings must share a
// code while distinct strings must not.
func FuzzDictionaryRoundTrip(f *testing.F) {
	f.Add([]byte("enzyme\x00enzyme\x00mRNA"), uint8(1))
	f.Add([]byte("a\x00b\x00a\x00c\x00\x00c"), uint8(3))
	f.Add([]byte(""), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, compactEvery uint8) {
		// Split the fuzz payload into strings on NUL bytes.
		var vals []string
		start := 0
		for i := 0; i <= len(raw); i++ {
			if i == len(raw) || raw[i] == 0 {
				vals = append(vals, string(raw[start:i]))
				start = i + 1
			}
		}
		s := MustSchema("Fz", []Column{{Name: "s", Type: TString}}, "")
		tab := NewTable(s)
		codeOf := map[string]uint32{}
		for i, v := range vals {
			tab.MustInsert(StrVal(v))
			pos := int32(i)
			if got := tab.StrAt(pos, 0); got != v {
				t.Fatalf("StrAt(%d) = %q, want %q", pos, got, v)
			}
			c := tab.CodeAt(pos, 0)
			if prev, ok := codeOf[v]; ok {
				if prev != c {
					t.Fatalf("string %q changed code %d -> %d", v, prev, c)
				}
			} else {
				for other, oc := range codeOf {
					if oc == c {
						t.Fatalf("code %d aliases %q and %q", c, other, v)
					}
				}
				codeOf[v] = c
			}
			if compactEvery > 0 && i%int(compactEvery) == 0 {
				tab.Compact()
			}
			// Earlier rows must be untouched by the append.
			if i > 0 {
				probe := int32(i / 2)
				if got := tab.StrAt(probe, 0); got != vals[probe] {
					t.Fatalf("append of row %d disturbed row %d: %q vs %q", i, probe, got, vals[probe])
				}
			}
		}
		// Lookup agrees with the recorded codes for every distinct value.
		for v, c := range codeOf {
			got, ok := tab.dict.lookup(v)
			if !ok || got != c {
				t.Fatalf("dict.lookup(%q) = %d,%v, want %d", v, got, ok, c)
			}
		}
	})
}
