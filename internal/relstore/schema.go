package relstore

import "fmt"

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type ColType
}

// Schema is the shape of a relation: an ordered list of typed columns,
// optionally with a single-column integer primary key.
type Schema struct {
	Name   string
	Cols   []Column
	KeyCol int // index of the primary-key column, or -1

	colIdx map[string]int
}

// NewSchema builds a schema. key names the primary-key column ("" for
// none); a key column must have type TInt, mirroring the paper's
// databases where every biological object carries an integer ID.
func NewSchema(name string, cols []Column, key string) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("relstore: schema needs a name")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("relstore: schema %q needs at least one column", name)
	}
	s := &Schema{Name: name, Cols: cols, KeyCol: -1, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("relstore: schema %q: column %d has no name", name, i)
		}
		if _, dup := s.colIdx[c.Name]; dup {
			return nil, fmt.Errorf("relstore: schema %q: duplicate column %q", name, c.Name)
		}
		s.colIdx[c.Name] = i
	}
	if key != "" {
		i, ok := s.colIdx[key]
		if !ok {
			return nil, fmt.Errorf("relstore: schema %q: key column %q not found", name, key)
		}
		if cols[i].Type != TInt {
			return nil, fmt.Errorf("relstore: schema %q: key column %q must be INT", name, key)
		}
		s.KeyCol = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for statically known schemas.
func MustSchema(name string, cols []Column, key string) *Schema {
	s, err := NewSchema(name, cols, key)
	if err != nil {
		panic(err)
	}
	return s
}

// ColIndex returns the position of the named column.
func (s *Schema) ColIndex(name string) (int, bool) {
	i, ok := s.colIdx[name]
	return i, ok
}

// NumCols returns the number of columns.
func (s *Schema) NumCols() int { return len(s.Cols) }

// CheckRow validates that a row matches the schema's arity and types.
func (s *Schema) CheckRow(r Row) error {
	if len(r) != len(s.Cols) {
		return fmt.Errorf("relstore: table %q: row has %d values, schema has %d columns", s.Name, len(r), len(s.Cols))
	}
	for i, v := range r {
		if v.Kind != s.Cols[i].Type {
			return fmt.Errorf("relstore: table %q: column %q: value %s has type %s, want %s",
				s.Name, s.Cols[i].Name, v, v.Kind, s.Cols[i].Type)
		}
	}
	return nil
}

// String renders the schema as a CREATE TABLE-like line.
func (s *Schema) String() string {
	out := s.Name + "("
	for i, c := range s.Cols {
		if i > 0 {
			out += ", "
		}
		out += c.Name + " " + c.Type.String()
		if i == s.KeyCol {
			out += " PRIMARY KEY"
		}
	}
	return out + ")"
}
