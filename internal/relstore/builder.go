package relstore

import "fmt"

// IntTableBuilder assembles an all-integer table as sealed columnar
// arrays in one pass, without the per-row snapshot publication of
// Insert. The materializers of the precomputed topology tables (whose
// schemas are all-TInt) build through it: appending a row is three
// array appends, and bulk-copying an unchanged row range from a
// previous generation is a memcpy per column — the core of the
// diff-aware Refresh materializer. Build publishes the finished arrays
// as one sealed snapshot with the primary-key map (when the schema has
// one) constructed in a single pass.
//
// A builder is single-goroutine; the Table it returns follows the
// normal concurrency contract.
type IntTableBuilder struct {
	schema *Schema
	cols   [][]int64
	n      int32
}

// NewIntTableBuilder returns a builder for the schema, which must have
// only TInt columns.
func NewIntTableBuilder(s *Schema) (*IntTableBuilder, error) {
	for _, c := range s.Cols {
		if c.Type != TInt {
			return nil, fmt.Errorf("relstore: IntTableBuilder on %q: column %q is not TInt", s.Name, c.Name)
		}
	}
	return &IntTableBuilder{schema: s, cols: make([][]int64, len(s.Cols))}, nil
}

// Grow pre-allocates capacity for n additional rows.
func (b *IntTableBuilder) Grow(n int) {
	for c := range b.cols {
		if cap(b.cols[c])-len(b.cols[c]) < n {
			grown := make([]int64, len(b.cols[c]), len(b.cols[c])+n)
			copy(grown, b.cols[c])
			b.cols[c] = grown
		}
	}
}

// AppendInts appends one row; vals must have one value per column.
func (b *IntTableBuilder) AppendInts(vals ...int64) {
	for c, v := range vals {
		b.cols[c] = append(b.cols[c], v)
	}
	b.n++
}

// AppendRange bulk-copies rows [lo, hi) of src, which must share the
// builder's column layout (all TInt, same column count). The copy goes
// through the source's column views, so it handles sealed and delta
// regions alike.
func (b *IntTableBuilder) AppendRange(src *Table, lo, hi int32) {
	if hi <= lo {
		return
	}
	for c := range b.cols {
		v := src.Col(c)
		// Sealed part first, then the delta tail, each a straight copy.
		slo, shi := lo, hi
		if shi > v.sealed {
			shi = v.sealed
		}
		if slo < shi {
			b.cols[c] = append(b.cols[c], v.ints[slo:shi]...)
		}
		dlo, dhi := lo-v.sealed, hi-v.sealed
		if dlo < 0 {
			dlo = 0
		}
		if dlo < dhi {
			b.cols[c] = append(b.cols[c], v.dints[dlo:dhi]...)
		}
	}
	b.n += hi - lo
}

// NumRows returns the number of rows appended so far.
func (b *IntTableBuilder) NumRows() int { return int(b.n) }

// Build publishes the accumulated rows as a sealed table. When the
// schema has a primary key, the key map is built in one pass and
// duplicate keys are rejected. The builder must not be reused after
// Build.
func (b *IntTableBuilder) Build() (*Table, error) {
	t := NewTable(b.schema)
	st := &tableState{
		sealed: b.n,
		nrows:  b.n,
		base:   make([]column, len(b.cols)),
		delta:  make([]column, len(b.cols)),
	}
	for c := range b.cols {
		st.base[c].ints = b.cols[c]
	}
	t.state.Store(st)
	if t.pk != nil {
		keys := b.cols[b.schema.KeyCol]
		m := make(map[int64]int32, len(keys))
		for pos, k := range keys {
			if _, dup := m[k]; dup {
				return nil, fmt.Errorf("relstore: table %q: duplicate primary key %d", b.schema.Name, k)
			}
			m[k] = int32(pos)
		}
		t.pk.sealed.Store(&m)
	}
	return t, nil
}
