package relstore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
)

// This file is the golden equivalence suite for the columnar storage
// engine: a miniature reference row store (rows as []Value, exactly the
// seed layout) is loaded with the same data as a columnar Table, and
// every read path — scans, lookups, ordered iteration, statistics,
// predicate evaluation — must return byte-identical results. CI runs
// these with `go test ./internal/relstore/... -run Equivalence`.

// refTable is the reference row store: the pre-columnar layout.
type refTable struct {
	schema *Schema
	rows   []Row
}

func (rt *refTable) insert(r Row) { rt.rows = append(rt.rows, r) }

func (rt *refTable) lookup(c int, v Value) []int32 {
	var out []int32
	for pos, r := range rt.rows {
		if r[c].Equal(v) {
			out = append(out, int32(pos))
		}
	}
	return out
}

// orderedPerm is the reference ordered index: positions stably sorted
// by the column's value.
func (rt *refTable) orderedPerm(c int) []int32 {
	perm := make([]int32, len(rt.rows))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return rt.rows[perm[a]][c].Compare(rt.rows[perm[b]][c]) < 0
	})
	return perm
}

// descOrder replays OrderedIndex.Scan(desc): runs of equal values in
// descending value order, ties within a run in insertion order.
func (rt *refTable) descOrder(c int) []int32 {
	perm := rt.orderedPerm(c)
	var out []int32
	hi := len(perm)
	for hi > 0 {
		lo := hi - 1
		v := rt.rows[perm[lo]][c]
		for lo > 0 && rt.rows[perm[lo-1]][c].Compare(v) == 0 {
			lo--
		}
		out = append(out, perm[lo:hi]...)
		hi = lo
	}
	return out
}

// stats replays the seed's row-at-a-time statistics pass.
func (rt *refTable) stats(c int) *ColStats {
	cs := &ColStats{Freq: make(map[Value]int)}
	if rt.schema.Cols[c].Type == TString {
		cs.TokenFreq = make(map[string]int)
	}
	first := true
	for _, r := range rt.rows {
		v := r[c]
		if first {
			cs.Min, cs.Max = v, v
			first = false
		} else {
			if v.Compare(cs.Min) < 0 {
				cs.Min = v
			}
			if v.Compare(cs.Max) > 0 {
				cs.Max = v
			}
		}
		if cs.Freq != nil {
			cs.Freq[v]++
			if len(cs.Freq) > maxTrackedValues {
				cs.NDV = len(cs.Freq)
				cs.Freq = nil
			}
		}
		if cs.TokenFreq != nil {
			seen := map[string]bool{}
			for _, tok := range strings.Fields(v.Str) {
				if !seen[tok] {
					seen[tok] = true
					cs.TokenFreq[tok]++
				}
			}
			if len(cs.TokenFreq) > 4*maxTrackedValues {
				cs.TokenFreq = nil
			}
		}
	}
	if cs.Freq != nil {
		cs.NDV = len(cs.Freq)
	} else if cs.NDV == 0 {
		cs.NDV = len(rt.rows)
	}
	return cs
}

// genPair loads the same pseudo-random relation into a columnar Table
// and the reference row store: an int primary key, a low-cardinality
// int column, and a multi-token string column with heavy duplication
// (the shape of the entity tables' desc columns).
func genPair(seed int64, n int) (*Table, *refTable) {
	rng := rand.New(rand.NewSource(seed))
	s := MustSchema("Eq", []Column{
		{Name: "ID", Type: TInt},
		{Name: "grp", Type: TInt},
		{Name: "desc", Type: TString},
	}, "ID")
	vocab := []string{
		"ubiquitin conjugating enzyme", "hypothetical protein",
		"enzyme variant", "mRNA", "zinc finger protein",
		"kinase domain enzyme", "transcription factor",
	}
	t, rt := NewTable(s), &refTable{schema: s}
	for i := 0; i < n; i++ {
		r := Row{
			IntVal(int64(i)),
			IntVal(int64(rng.Intn(7))),
			StrVal(vocab[rng.Intn(len(vocab))]),
		}
		if err := t.Insert(r); err != nil {
			panic(err)
		}
		rt.insert(r)
	}
	return t, rt
}

func TestEquivalenceScan(t *testing.T) {
	tab, ref := genPair(1, 500)
	var got, want []string
	tab.Scan(func(pos int32, r Row) bool {
		got = append(got, fmt.Sprintf("%d:%v", pos, r))
		return true
	})
	for pos, r := range ref.rows {
		want = append(want, fmt.Sprintf("%d:%v", pos, r))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Scan diverges from the row store")
	}
	// Cell accessors and the materializing shims agree with the rows.
	for pos, r := range ref.rows {
		p := int32(pos)
		if tab.IntAt(p, 0) != r[0].Int || tab.IntAt(p, 1) != r[1].Int || tab.StrAt(p, 2) != r[2].Str {
			t.Fatalf("cell accessors diverge at pos %d", pos)
		}
		for c := range r {
			if tab.ValueAt(p, c) != r[c] {
				t.Fatalf("ValueAt(%d,%d) = %v, want %v", pos, c, tab.ValueAt(p, c), r[c])
			}
		}
		if !reflect.DeepEqual(tab.Row(p), r) {
			t.Fatalf("Row(%d) diverges", pos)
		}
		if got := tab.AppendRow(nil, p); !reflect.DeepEqual(got, r) {
			t.Fatalf("AppendRow(%d) diverges", pos)
		}
	}
	// Column views agree too.
	ids, descs := tab.Col(0), tab.Col(2)
	if ids.Len() != len(ref.rows) || descs.Len() != len(ref.rows) {
		t.Fatal("view lengths diverge")
	}
	for pos, r := range ref.rows {
		if ids.Int(int32(pos)) != r[0].Int || descs.Str(int32(pos)) != r[2].Str {
			t.Fatalf("column view diverges at pos %d", pos)
		}
		if ids.Value(int32(pos)) != r[0] || descs.Value(int32(pos)) != r[2] {
			t.Fatalf("view Value diverges at pos %d", pos)
		}
	}
}

func TestEquivalenceLookup(t *testing.T) {
	tab, ref := genPair(2, 400)
	probes := []struct {
		col string
		c   int
		v   Value
	}{
		{"grp", 1, IntVal(3)},
		{"grp", 1, IntVal(99)}, // absent int
		{"desc", 2, StrVal("mRNA")},
		{"desc", 2, StrVal("never interned")}, // absent string
		{"ID", 0, IntVal(17)},
	}
	for round := 0; round < 2; round++ {
		for _, p := range probes {
			got, err := tab.Lookup(p.col, p.v)
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if want := ref.lookup(p.c, p.v); !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d: Lookup(%s=%s) = %v, want %v", round, p.col, p.v, got, want)
			}
		}
		// Round 1 repeats every probe through the hash indexes.
		if round == 0 {
			for _, col := range []string{"ID", "grp", "desc"} {
				if _, err := tab.CreateHashIndex(col); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	// Primary-key paths agree with a reference scan.
	for _, id := range []int64{0, 123, 399, 400, -1} {
		want := ref.lookup(0, IntVal(id))
		pos, ok := tab.PKPos(id)
		if ok != (len(want) == 1) || (ok && pos != want[0]) {
			t.Fatalf("PKPos(%d) = %d,%v, want %v", id, pos, ok, want)
		}
		row, ok := tab.LookupPK(id)
		if ok != (len(want) == 1) || (ok && !reflect.DeepEqual(row, ref.rows[want[0]])) {
			t.Fatalf("LookupPK(%d) diverges", id)
		}
	}
}

func TestEquivalenceOrderedIndex(t *testing.T) {
	for _, col := range []struct {
		name string
		c    int
	}{{"grp", 1}, {"desc", 2}} {
		tab, ref := genPair(3, 300)
		ix, err := tab.CreateOrderedIndex(col.name)
		if err != nil {
			t.Fatal(err)
		}
		// Grow both sides after index creation so the pending-merge
		// path is exercised too.
		rng := rand.New(rand.NewSource(99))
		vocab := []string{"mRNA", "enzyme variant", "late extra token"}
		for i := 0; i < 50; i++ {
			r := Row{IntVal(int64(1000 + i)), IntVal(int64(rng.Intn(7))), StrVal(vocab[rng.Intn(3)])}
			if err := tab.Insert(r); err != nil {
				t.Fatal(err)
			}
			ref.insert(r)
		}
		var asc []int32
		ix.Scan(false, func(pos int32) bool { asc = append(asc, pos); return true })
		if want := ref.orderedPerm(col.c); !reflect.DeepEqual(asc, want) {
			t.Fatalf("%s: ascending order diverges from stable row sort", col.name)
		}
		var desc []int32
		ix.Scan(true, func(pos int32) bool { desc = append(desc, pos); return true })
		if want := ref.descOrder(col.c); !reflect.DeepEqual(desc, want) {
			t.Fatalf("%s: descending order diverges", col.name)
		}
		if ix.Len() != len(ref.rows) {
			t.Fatalf("%s: Len = %d, want %d", col.name, ix.Len(), len(ref.rows))
		}
		for i := 0; i < ix.Len(); i++ {
			if ix.At(i) != asc[i] {
				t.Fatalf("%s: At(%d) diverges", col.name, i)
			}
		}
	}
	// Range agrees with a filtered stable sort.
	tab, ref := genPair(4, 200)
	ix, err := tab.CreateOrderedIndex("grp")
	if err != nil {
		t.Fatal(err)
	}
	var got []int32
	ix.Range(IntVal(2), IntVal(4), func(pos int32) bool { got = append(got, pos); return true })
	var want []int32
	for _, pos := range ref.orderedPerm(1) {
		if v := ref.rows[pos][1].Int; v >= 2 && v <= 4 {
			want = append(want, pos)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Range(2,4) = %v, want %v", got, want)
	}
}

func TestEquivalenceStats(t *testing.T) {
	tab, ref := genPair(5, 600)
	st := tab.Stats()
	if st.Rows != len(ref.rows) {
		t.Fatalf("Rows = %d, want %d", st.Rows, len(ref.rows))
	}
	for c := range ref.schema.Cols {
		got, want := st.Col(c), ref.stats(c)
		if got.NDV != want.NDV || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("col %d: NDV/Min/Max = %d/%v/%v, want %d/%v/%v",
				c, got.NDV, got.Min, got.Max, want.NDV, want.Min, want.Max)
		}
		if !reflect.DeepEqual(got.Freq, want.Freq) {
			t.Fatalf("col %d: Freq diverges from row-store pass", c)
		}
		if !reflect.DeepEqual(got.TokenFreq, want.TokenFreq) {
			t.Fatalf("col %d: TokenFreq diverges: %v vs %v", c, got.TokenFreq, want.TokenFreq)
		}
	}
}

// TestEquivalenceStatsOverflow checks the histogram caps: a column with
// more than maxTrackedValues distinct values must report the same
// capped NDV and nil Freq as the row-at-a-time pass did.
func TestEquivalenceStatsOverflow(t *testing.T) {
	s := MustSchema("Wide", []Column{{Name: "k", Type: TInt}, {Name: "s", Type: TString}}, "")
	tab := NewTable(s)
	ref := &refTable{schema: s}
	n := maxTrackedValues + 100
	for i := 0; i < n; i++ {
		r := Row{IntVal(int64(i)), StrVal(fmt.Sprintf("tok%d unique", i))}
		if err := tab.Insert(r); err != nil {
			t.Fatal(err)
		}
		ref.insert(r)
	}
	for c := 0; c < 2; c++ {
		got, want := tab.Stats().Col(c), ref.stats(c)
		if got.NDV != want.NDV {
			t.Fatalf("col %d: NDV = %d, want %d", c, got.NDV, want.NDV)
		}
		if (got.Freq == nil) != (want.Freq == nil) {
			t.Fatalf("col %d: Freq nil-ness diverges", c)
		}
		if !reflect.DeepEqual(got.TokenFreq, want.TokenFreq) {
			t.Fatalf("col %d: TokenFreq diverges", c)
		}
	}
}

func TestEquivalencePredEval(t *testing.T) {
	tab, ref := genPair(6, 400)
	s := tab.Schema
	preds := []Pred{
		True{},
		MustEq(s, "grp", IntVal(3)),
		MustEq(s, "desc", StrVal("mRNA")),
		MustEq(s, "desc", StrVal("not in dictionary")),
		MustContains(s, "desc", "enzyme"),
		MustContains(s, "desc", "nothere"),
		Not(MustContains(s, "desc", "protein")),
		And(MustContains(s, "desc", "enzyme"), MustEq(s, "grp", IntVal(1))),
		Or(MustEq(s, "grp", IntVal(0)), MustEq(s, "grp", IntVal(6))),
	}
	if p, err := Cmp(s, "ID", "<", IntVal(200)); err == nil {
		preds = append(preds, p)
	} else {
		t.Fatal(err)
	}
	if p, err := Cmp(s, "desc", ">=", StrVal("mRNA")); err == nil {
		preds = append(preds, p)
	} else {
		t.Fatal(err)
	}
	for _, p := range preds {
		for pos, r := range ref.rows {
			if got, want := p.EvalAt(tab, int32(pos)), p.Eval(r); got != want {
				t.Fatalf("%s: EvalAt(%d) = %v, row Eval = %v", p, pos, got, want)
			}
		}
	}
}

// TestEquivalenceConcurrentReaderHammer races many readers over one
// fully built table — scans, cell reads through column views, hash and
// ordered index probes, statistics — and checks every reader observes
// the same totals (run under -race in CI). Ordered reads race the
// pending-merge flush on purpose.
func TestEquivalenceConcurrentReaderHammer(t *testing.T) {
	tab, ref := genPair(7, 800)
	if _, err := tab.CreateHashIndex("grp"); err != nil {
		t.Fatal(err)
	}
	ixo, err := tab.CreateOrderedIndex("desc")
	if err != nil {
		t.Fatal(err)
	}
	// Leave inserts pending so concurrent readers race to flush them.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		r := Row{IntVal(int64(2000 + i)), IntVal(int64(rng.Intn(7))), StrVal("mRNA")}
		if err := tab.Insert(r); err != nil {
			t.Fatal(err)
		}
		ref.insert(r)
	}
	var wantSum int64
	var wantHits int
	for _, r := range ref.rows {
		wantSum += r[1].Int
		if r[1].Int == 3 {
			wantHits++
		}
	}
	wantDesc := ref.descOrder(2)
	pred := MustContains(tab.Schema, "desc", "mRNA")
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			switch w % 4 {
			case 0: // positional scan through a column view
				grp := tab.Col(1)
				var sum int64
				for pos := 0; pos < grp.Len(); pos++ {
					sum += grp.Int(int32(pos))
				}
				if sum != wantSum {
					t.Errorf("reader %d: view sum = %d, want %d", w, sum, wantSum)
				}
			case 1: // hash probe + predicate scan
				ix, ok := tab.HashIndexOn("grp")
				if !ok {
					t.Errorf("reader %d: index vanished", w)
					return
				}
				if got := len(ix.Lookup(IntVal(3))); got != wantHits {
					t.Errorf("reader %d: Lookup(3) = %d hits, want %d", w, got, wantHits)
				}
				n := 0
				tab.ScanPos(func(pos int32) bool {
					if pred.EvalAt(tab, pos) {
						n++
					}
					return true
				})
			case 2: // ordered scan racing the pending flush
				var got []int32
				ixo.Scan(true, func(pos int32) bool { got = append(got, pos); return true })
				if !reflect.DeepEqual(got, wantDesc) {
					t.Errorf("reader %d: ordered scan diverges under race", w)
				}
			case 3: // stats and materializing shims
				st := tab.Stats()
				if st.Rows != len(ref.rows) {
					t.Errorf("reader %d: stats rows = %d", w, st.Rows)
				}
				tab.Scan(func(pos int32, r Row) bool {
					return r[0].Int == ref.rows[pos][0].Int
				})
			}
		}(w)
	}
	wg.Wait()
}
