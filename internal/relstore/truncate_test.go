package relstore

import (
	"reflect"
	"sync"
	"testing"
)

// This file tests TruncateTo, the rollback half of batch-atomic
// application: a table rolled back to its pre-batch row count must be
// observably identical — rows, primary key, hash and ordered indexes,
// statistics — to a table that never saw the doomed rows, while
// concurrent readers holding mid-batch snapshots stay consistent.

// buildLive builds a table holding expectRow(0..n), with the first
// sealed rows compacted and hash/ordered indexes created before the
// delta rows land.
func buildLive(t *testing.T, sealed, total int) *Table {
	t.Helper()
	tab := NewTable(liveSchema())
	for pos := int32(0); pos < int32(sealed); pos++ {
		if err := tab.Insert(expectRow(pos)); err != nil {
			t.Fatal(err)
		}
	}
	tab.Compact()
	if _, err := tab.CreateHashIndex("grp"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.CreateOrderedIndex("grp"); err != nil {
		t.Fatal(err)
	}
	for pos := int32(sealed); pos < int32(total); pos++ {
		if err := tab.Insert(expectRow(pos)); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// assertTablesEquivalent checks every observable surface of got against
// want: row contents, primary-key probes, hash-index postings, ordered
// scans, and statistics.
func assertTablesEquivalent(t *testing.T, got, want *Table, probeIDs int64) {
	t.Helper()
	if got.NumRows() != want.NumRows() {
		t.Fatalf("NumRows = %d, want %d", got.NumRows(), want.NumRows())
	}
	for pos := int32(0); pos < int32(want.NumRows()); pos++ {
		if !reflect.DeepEqual(got.Row(pos), want.Row(pos)) {
			t.Fatalf("row %d = %v, want %v", pos, got.Row(pos), want.Row(pos))
		}
	}
	for id := int64(0); id < probeIDs; id++ {
		gp, gok := got.PKPos(id)
		wp, wok := want.PKPos(id)
		if gok != wok || (gok && gp != wp) {
			t.Fatalf("PKPos(%d) = (%d,%v), want (%d,%v)", id, gp, gok, wp, wok)
		}
	}
	gix, _ := got.HashIndexOn("grp")
	wix, _ := want.HashIndexOn("grp")
	for k := int64(0); k < 7; k++ {
		if !reflect.DeepEqual(gix.LookupInt(k), wix.LookupInt(k)) {
			t.Fatalf("hash postings for grp=%d: %v, want %v", k, gix.LookupInt(k), wix.LookupInt(k))
		}
	}
	var gscan, wscan []int32
	goix, _ := got.OrderedIndexOn("grp")
	woix, _ := want.OrderedIndexOn("grp")
	goix.Scan(false, func(pos int32) bool { gscan = append(gscan, pos); return true })
	woix.Scan(false, func(pos int32) bool { wscan = append(wscan, pos); return true })
	if !reflect.DeepEqual(gscan, wscan) {
		t.Fatalf("ordered scan: %v, want %v", gscan, wscan)
	}
	gs, ws := got.Stats(), want.Stats()
	if gs.Rows != ws.Rows {
		t.Fatalf("stats rows = %d, want %d", gs.Rows, ws.Rows)
	}
	for c := 0; c < 3; c++ {
		if gs.Col(c).NDV != ws.Col(c).NDV {
			t.Fatalf("stats col %d NDV = %d, want %d", c, gs.Col(c).NDV, ws.Col(c).NDV)
		}
	}
}

func TestTruncateToRollsBackBatch(t *testing.T) {
	tab := buildLive(t, 50, 80)
	want := buildLive(t, 50, 60) // the state a clean 10-row batch reaches

	// Warm the rolled-back table's stats so the reset is exercised.
	_ = tab.Stats()

	if err := tab.TruncateTo(60); err != nil {
		t.Fatal(err)
	}
	assertTablesEquivalent(t, tab, want, 90)

	// The rolled-back table must accept re-inserts of the dropped keys
	// (their pk entries are gone) and then match a straight-line build.
	for pos := int32(60); pos < 80; pos++ {
		if err := tab.Insert(expectRow(pos)); err != nil {
			t.Fatalf("re-insert after rollback: %v", err)
		}
	}
	assertTablesEquivalent(t, tab, buildLive(t, 50, 80), 90)
}

func TestTruncateToBelowSealedRejected(t *testing.T) {
	tab := buildLive(t, 50, 60)
	if err := tab.TruncateTo(40); err == nil {
		t.Fatal("TruncateTo below the sealed watermark succeeded")
	}
	if tab.NumRows() != 60 {
		t.Fatalf("failed TruncateTo changed the row count to %d", tab.NumRows())
	}
}

func TestTruncateToPreservesReaderSnapshots(t *testing.T) {
	tab := buildLive(t, 50, 70)

	// Readers captured mid-batch: a column view and an ordered-index
	// snapshot both covering the doomed rows.
	view := tab.Col(0)
	oix, _ := tab.OrderedIndexOn("grp")
	var before []int32
	oix.Scan(false, func(pos int32) bool { before = append(before, pos); return true })

	if err := tab.TruncateTo(60); err != nil {
		t.Fatal(err)
	}
	// Overwrite the dropped range with DIFFERENT rows; the old snapshot
	// must keep showing the original cells (fresh backing on rollback).
	for pos := int32(60); pos < 70; pos++ {
		r := expectRow(pos + 1000)
		r[0] = IntVal(int64(pos) + 5000) // fresh keys
		if err := tab.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for pos := int32(0); pos < 70; pos++ {
		if got, want := view.Int(pos), int64(pos); got != want {
			t.Fatalf("reader snapshot cell %d changed to %d after rollback+reuse", pos, got)
		}
	}
	if len(before) != 70 {
		t.Fatalf("pre-rollback ordered snapshot saw %d rows, want 70", len(before))
	}
}

// TestTruncateToFiltersMidBatchHashIndex covers the race where a query
// creates a hash index BETWEEN the doomed inserts and the rollback: the
// freshly built sealed map contains doomed positions and must be
// rebuilt filtered.
func TestTruncateToFiltersMidBatchHashIndex(t *testing.T) {
	tab := NewTable(liveSchema())
	for pos := int32(0); pos < 30; pos++ {
		if err := tab.Insert(expectRow(pos)); err != nil {
			t.Fatal(err)
		}
	}
	// Index created after the doomed rows landed: its sealed map holds
	// positions 20..29.
	ix, err := tab.CreateHashIndex("grp")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.TruncateTo(20); err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 7; k++ {
		for _, pos := range ix.LookupInt(k) {
			if pos >= 20 {
				t.Fatalf("hash index still holds dropped position %d for key %d", pos, k)
			}
		}
	}
}

// TestTruncateToConcurrentReaders races rollback + re-insert cycles
// against readers, asserting no reader ever observes an invalid
// position or inconsistent prefix (run under -race in CI).
func TestTruncateToConcurrentReaders(t *testing.T) {
	tab := buildLive(t, 200, 200)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := int32(tab.NumRows())
				for pos := int32(0); pos < n && pos < 200; pos++ {
					if got := tab.IntAt(pos, 0); got != int64(pos) {
						t.Errorf("stable row %d reads %d", pos, got)
						return
					}
				}
				ix, _ := tab.HashIndexOn("grp")
				for k := int64(0); k < 7; k++ {
					for _, pos := range ix.LookupInt(k) {
						if pos >= int32(tab.NumRows())+64 {
							// Readers may see a slightly stale count; wildly
							// out-of-range positions mean corruption.
							t.Errorf("hash probe returned far-future position %d", pos)
							return
						}
					}
				}
			}
		}()
	}
	for cycle := 0; cycle < 50; cycle++ {
		for pos := int32(200); pos < 230; pos++ {
			if err := tab.Insert(expectRow(pos)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tab.TruncateTo(200); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	assertTablesEquivalent(t, tab, buildLive(t, 200, 200), 240)
}
