// Golden equivalence suite for the columnar storage engine: the items,
// counter totals, plan choices and table cardinalities below were
// captured by running the identical workload on the row-store layout
// (commit 60289cd, rows as []Value slices) and must stay byte-identical
// on the columnar engine at every parallelism setting.
package toposearch_test

import (
	"context"
	"fmt"
	"testing"

	"toposearch/internal/biozon"
	"toposearch/internal/core"
	"toposearch/internal/engine"
	"toposearch/internal/methods"
	"toposearch/internal/ranking"
	"toposearch/internal/relstore"
)

func itemsString(items []methods.Item) string {
	s := ""
	for _, it := range items {
		s += fmt.Sprintf("%d:%d ", it.TID, it.Score)
	}
	return s
}

func TestEquivalenceGoldenSeedQueries(t *testing.T) {
	db := biozon.Generate(biozon.DefaultConfig(1))
	s, err := methods.BuildStore(context.Background(), db, biozon.SchemaGraph(),
		biozon.Protein, biozon.DNA, methods.StoreConfig{
			Opts:           core.DefaultOptions(),
			PruneThreshold: 2,
			Scores:         ranking.Schemes(),
		})
	if err != nil {
		t.Fatal(err)
	}
	// Offline artifacts match the row-store build exactly.
	if got := fmt.Sprintf("%d/%d/%d/%d", s.AllTops.NumRows(), s.LeftTops.NumRows(),
		s.ExcpTops.NumRows(), s.TopInfo.NumRows()); got != "7795/958/1736/85" {
		t.Fatalf("table cardinalities = %s, want row-store 7795/958/1736/85", got)
	}
	if got := fmt.Sprint(s.PrunedTIDs); got != "[0 13 8 3 11 14 5 2 12 1]" {
		t.Fatalf("pruned TIDs = %s diverge from row-store seed", got)
	}

	p1, err := biozon.SelectivityPred(s.T1.Schema, "medium")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := relstore.Eq(s.T2.Schema, "type", relstore.StrVal("mRNA"))
	if err != nil {
		t.Fatal(err)
	}

	const allTIDs = "0:0 1:0 2:0 3:0 4:0 5:0 6:0 7:0 8:0 9:0 10:0 11:0 12:0 13:0 " +
		"14:0 15:0 16:0 17:0 18:0 19:0 20:0 21:0 22:0 23:0 26:0 29:0 33:0 34:0 " +
		"37:0 42:0 44:0 58:0 59:0 68:0 69:0 73:0 81:0 82:0 "
	const top10 = "26:142 73:125 4:86 22:86 34:86 37:86 21:85 33:85 58:85 59:85 "
	golden := []struct {
		method   string
		items    string
		counters engine.Counters
		plan     string
	}{
		{methods.MethodSQL, allTIDs, engine.Counters{RowsScanned: 300, IndexProbes: 1169978}, "regular"},
		{methods.MethodFullTop, allTIDs, engine.Counters{RowsScanned: 300, IndexProbes: 3731, TuplesOut: 38}, "regular"},
		{methods.MethodFastTop, allTIDs, engine.Counters{RowsScanned: 17882, IndexProbes: 849, TuplesOut: 28}, "regular"},
		{methods.MethodFullTopK, top10, engine.Counters{RowsScanned: 300, IndexProbes: 3731, TuplesOut: 38}, "regular"},
		{methods.MethodFastTopK, top10, engine.Counters{RowsScanned: 300, IndexProbes: 536, TuplesOut: 28}, "regular"},
		{methods.MethodFullTopKET, top10, engine.Counters{RowsScanned: 34, IndexProbes: 187, TuplesOut: 10}, "regular"},
		{methods.MethodFastTopKET, top10, engine.Counters{RowsScanned: 34, IndexProbes: 187, TuplesOut: 10}, "regular"},
		{methods.MethodFullTopOpt, top10, engine.Counters{RowsScanned: 10235, IndexProbes: 74, TuplesOut: 10}, "et-hdgj"},
		{methods.MethodFastTopOpt, top10, engine.Counters{RowsScanned: 10235, IndexProbes: 74, TuplesOut: 10}, "et-hdgj"},
	}
	for _, g := range golden {
		for _, workers := range []int{1, 8} {
			q := methods.Query{Pred1: p1, Pred2: p2, K: 10, Ranking: ranking.Domain, Parallelism: workers}
			if g.method == methods.MethodSQL || g.method == methods.MethodFullTop || g.method == methods.MethodFastTop {
				q.K, q.Ranking = 0, ""
			}
			res, err := s.Run(g.method, q)
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", g.method, workers, err)
			}
			if got := itemsString(res.Items); got != g.items {
				t.Errorf("%s/workers=%d: items %v diverge from row-store golden %v", g.method, workers, got, g.items)
			}
			if res.Counters != g.counters {
				t.Errorf("%s/workers=%d: counters %+v diverge from row-store golden %+v", g.method, workers, res.Counters, g.counters)
			}
			if fmt.Sprint(res.Plan) != g.plan {
				t.Errorf("%s/workers=%d: plan %v diverges from row-store golden %s", g.method, workers, res.Plan, g.plan)
			}
		}
	}
}
