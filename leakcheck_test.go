package toposearch_test

import (
	"runtime"
	"testing"
	"time"
)

// goroutineBaseline snapshots the current goroutine count for a later
// assertNoGoroutineLeak. Use as:
//
//	defer assertNoGoroutineLeak(t, goroutineBaseline())
//
// at the top of a test, before any engine object is built.
func goroutineBaseline() int { return runtime.NumGoroutine() }

// assertNoGoroutineLeak fails the test when goroutines outlive the
// engine work that spawned them. Worker pools, speculative segment
// racers, shard executors and cache fills all terminate on their own;
// the count is polled with a grace period because losers of a
// speculative race are cancelled asynchronously and can legitimately
// take a few scheduler rounds to unwind.
func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		// A small tolerance absorbs runtime-internal goroutines (GC
		// workers, timer scavenger) that come and go on their own.
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("goroutine leak: %d running, baseline %d\n%s",
		n, baseline, buf[:runtime.Stack(buf, true)])
}
