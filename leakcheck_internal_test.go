package toposearch

import (
	"runtime"
	"testing"
	"time"
)

// White-box twin of the leak-check helper in leakcheck_test.go: Go
// keeps the toposearch and toposearch_test test packages separate, so
// the white-box suites carry their own copy.
func goroutineBaseline() int { return runtime.NumGoroutine() }

func assertNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		runtime.Gosched()
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Errorf("goroutine leak: %d running, baseline %d\n%s",
		n, baseline, buf[:runtime.Stack(buf, true)])
}
