module toposearch

go 1.24
