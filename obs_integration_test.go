// Observability integration tests: traced execution must be
// byte-identical to untraced execution across the
// parallelism x speculation x shards grid, the /metrics endpoint must
// serve valid Prometheus text covering every engine family, metric
// writes must be race-free under concurrent Search/ApplyBatch/Refresh
// with live scrapes, and SearcherStats must stay a faithful snapshot
// of the registry-backed counters through Close (CI runs these via
// -run Obs).
package toposearch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"toposearch"
	"toposearch/internal/biozon"
	"toposearch/internal/core"
	"toposearch/internal/fault"
	"toposearch/internal/methods"
	"toposearch/internal/obs"
	"toposearch/internal/ranking"
)

// buildObsStore builds the third-sized randomized store the trace
// equivalence grid runs over (same shape as the spec equivalence
// harness).
func buildObsStore(t *testing.T, seed int64) (*methods.Store, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := biozon.DefaultConfig(1)
	cfg.Seed = seed
	for _, n := range []*int{
		&cfg.Proteins, &cfg.DNAs, &cfg.Unigenes, &cfg.Interactions,
		&cfg.Families, &cfg.Pathways, &cfg.Structures,
		&cfg.Encodes, &cfg.UniEncodes, &cfg.UniContains,
		&cfg.PInteract, &cfg.DInteract,
		&cfg.Belongs, &cfg.Manifest, &cfg.PathElements,
		&cfg.SelfRegulating, &cfg.Triangles,
	} {
		*n = (*n + 2) / 3
	}
	db := biozon.Generate(cfg)
	st, err := methods.BuildStore(context.Background(), db, biozon.SchemaGraph(),
		biozon.Protein, biozon.DNA, methods.StoreConfig{
			Opts:           core.DefaultOptions(),
			PruneThreshold: 2 + rng.Intn(5),
			Scores:         ranking.Schemes(),
		})
	if err != nil {
		t.Fatal(err)
	}
	return st, rng
}

// TestObsTraceEquivalence is the acceptance gate for tracing: at every
// grid point, running a query with a trace span attached must return
// items, counters and plan byte-identical to the untraced run — spans
// only observe, they never steer execution.
func TestObsTraceEquivalence(t *testing.T) {
	st, rng := buildObsStore(t, 5)
	type gridCfg struct{ par, spec, shards int }
	grid := []gridCfg{
		{1, 1, 1}, {4, 2, 1}, {4, 8, 1}, {1, 1, 2}, {4, 2, 4},
	}
	for qi, q := range randomQueries(t, rng, st, 2) {
		for _, m := range methods.AllMethods() {
			mq := q
			if m == methods.MethodSQL || m == methods.MethodFullTop || m == methods.MethodFastTop {
				mq.K, mq.Ranking = 0, ""
			}
			for _, g := range grid {
				plain := mq
				plain.Parallelism, plain.Speculation, plain.Shards = g.par, g.spec, g.shards
				want, err := st.Run(m, plain)
				if err != nil {
					t.Fatalf("q%d %s p=%d s=%d sh=%d untraced: %v", qi, m, g.par, g.spec, g.shards, err)
				}
				traced := plain
				root := obs.NewTrace("test")
				traced.Trace = root
				got, err := st.Run(m, traced)
				if err != nil {
					t.Fatalf("q%d %s p=%d s=%d sh=%d traced: %v", qi, m, g.par, g.spec, g.shards, err)
				}
				root.End()
				tag := fmt.Sprintf("q%d %s k=%d p=%d s=%d sh=%d", qi, m, mq.K, g.par, g.spec, g.shards)
				if gi, wi := itemsString(got.Items), itemsString(want.Items); gi != wi {
					t.Errorf("%s: traced items %s diverge from untraced %s", tag, gi, wi)
				}
				if got.Counters != want.Counters {
					t.Errorf("%s: traced counters %+v diverge from untraced %+v", tag, got.Counters, want.Counters)
				}
				if got.Plan != want.Plan {
					t.Errorf("%s: traced plan %v diverges from untraced %v", tag, got.Plan, want.Plan)
				}
				if len(root.Children()) == 0 {
					t.Errorf("%s: trace recorded no spans", tag)
				}
			}
		}
	}
}

// TestObsPublicTracedSearch exercises SearchQuery.Trace through the
// public API: identical topologies, a populated span tree, and working
// text/JSON renderings.
func TestObsPublicTracedSearch(t *testing.T) {
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048, Parallelism: 4, Speculation: 2, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, q := range []toposearch.SearchQuery{
		{K: 5, Method: "fast-top-k-et"},
		{K: 3, Method: "fast-top-k-opt", Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}}},
		{Method: "fast-top", Shards: 2},
	} {
		// Traced first: the untraced repeat then answers from the cache,
		// proving the cached value never carries the filler's trace.
		tq := q
		tq.Trace = true
		traced, err := s.SearchContext(ctx, tq)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := s.SearchContext(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(plain.Topologies) != fmt.Sprint(traced.Topologies) {
			t.Fatalf("%s: traced topologies diverge from untraced", q.Method)
		}
		if plain.Trace != nil {
			t.Fatalf("%s: untraced result carries a trace", q.Method)
		}
		if traced.Trace == nil || len(traced.Trace.Children()) == 0 {
			t.Fatalf("%s: traced result has no span tree", q.Method)
		}
		var text bytes.Buffer
		traced.Trace.Render(&text)
		if !strings.Contains(text.String(), "search") || !strings.Contains(text.String(), "method ") {
			t.Fatalf("%s: trace rendering missing expected spans:\n%s", q.Method, text.String())
		}
		data, err := json.Marshal(traced.Trace)
		if err != nil {
			t.Fatal(err)
		}
		var tree struct {
			Name     string            `json:"name"`
			Children []json.RawMessage `json:"children"`
		}
		if err := json.Unmarshal(data, &tree); err != nil {
			t.Fatal(err)
		}
		if tree.Name != "search" || len(tree.Children) == 0 {
			t.Fatalf("%s: trace JSON malformed: %s", q.Method, data)
		}
	}
	// The cached repeat answers identically and still traces its own
	// lookup.
	q := toposearch.SearchQuery{K: 5, Method: "fast-top-k-et", Trace: true}
	first, err := s.SearchContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.SearchContext(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("repeat query missed the result cache")
	}
	if fmt.Sprint(first.Topologies) != fmt.Sprint(again.Topologies) {
		t.Fatal("cached traced result diverges")
	}
	if again.Trace == nil {
		t.Fatal("cached hit lost its per-caller trace")
	}
}

// validateExposition is a minimal Prometheus text-format (v0.0.4)
// checker: every sample line parses, belongs to a family declared by a
// preceding # TYPE line, histogram buckets are cumulative and end in
// +Inf, and series within a family are unique. Returns sample values
// by full series name.
func validateExposition(t *testing.T, text string) map[string]string {
	t.Helper()
	samples := map[string]string{}
	types := map[string]string{}
	current := ""
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "TYPE" {
				types[parts[2]] = parts[3]
				current = parts[2]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, value := line[:sp], line[sp+1:]
		if value == "" {
			t.Fatalf("line %d: empty value in %q", ln+1, line)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, line)
			}
			name = series[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if types[strings.TrimSuffix(name, suf)] == "histogram" {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("line %d: series %q has no # TYPE declaration", ln+1, line)
		}
		if current != "" && base != current {
			t.Fatalf("line %d: series %q interleaves into family %q", ln+1, line, current)
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, line)
		}
		samples[series] = value
	}
	return samples
}

// TestObsMetricsEndpoint drives a full workload — search, batch apply,
// incremental refresh, a never-firing fault arming — with recording
// enabled, then scrapes GET /metrics and checks the exposition is
// valid and covers every engine family the issue demands.
func TestObsMetricsEndpoint(t *testing.T) {
	toposearch.SetMetricsEnabled(true)
	defer toposearch.SetMetricsEnabled(false)
	if err := fault.Enable(11, fault.Rule{Point: "cache.fill", After: 1 << 50}); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()

	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 11)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048,
		Parallelism: 4, Speculation: 2, Shards: 2, MaxInflight: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, q := range []toposearch.SearchQuery{
		{K: 5, Method: "fast-top-k-et", Speculation: 2},
		{K: 5, Method: "fast-top-k-et", Speculation: 2}, // cache hit
		{Method: "fast-top", Shards: 2},
		{K: 3, Method: "fast-top-k-opt"},
	} {
		if _, err := s.SearchContext(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.ApplyBatch([]toposearch.Update{
		toposearch.InsertEntity(toposearch.Protein, 4_910_001, map[string]string{"desc": "obs endpoint protein kwsel50"}),
		toposearch.InsertEntity(toposearch.DNA, 5_910_001, map[string]string{"type": "mRNA", "desc": "obs endpoint dna"}),
		toposearch.InsertRelationship("encodes", 4_910_001, 5_910_001),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RefreshContext(ctx); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(toposearch.MetricsMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET /metrics content type %q", ct)
	}
	samples := validateExposition(t, string(body))

	for _, family := range []string{
		"toposearch_query_duration_seconds_count", // searcher latency
		"toposearch_searcher_admission_total",     // admission control
		"toposearch_cache_events_total",           // result cache
		"toposearch_cache_resident_bytes",         // cache footprint
		"toposearch_shard_executors_total",        // sharded execution
		"toposearch_spec_segments_total",          // speculation
		"toposearch_refresh_duration_seconds_sum", // refresh latency
		"toposearch_refresh_tables_total",         // diff materializer
		"toposearch_apply_mutations_total",        // batch apply
		"toposearch_delta_bytes",                  // write-state footprint
		"toposearch_fault_fired_total",            // fault injection
		"toposearch_build_duration_seconds_count", // offline phase
	} {
		found := false
		for series := range samples {
			if strings.HasPrefix(series, family) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if v := samples[`toposearch_cache_events_total{event="hit"}`]; v == "0" || v == "" {
		t.Errorf("cache hit counter not incremented: %q", v)
	}
	if v := samples["toposearch_refresh_edges_total"]; v == "0" || v == "" {
		t.Errorf("refresh edge counter not incremented: %q", v)
	}

	// /statsz serves the same registry as JSON.
	resp, err = http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Metrics []struct {
			Name string `json:"name"`
		} `json:"metrics"`
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Metrics) == 0 {
		t.Fatal("/statsz returned no metric families")
	}
	// /debug/pprof answers.
	resp, err = http.Get(srv.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/goroutine: %d", resp.StatusCode)
	}
}

// TestObsConcurrentScrapeHammer races searches, batch applies,
// incremental refreshes and /metrics scrapes with recording enabled —
// the -race gate over every metric write site.
func TestObsConcurrentScrapeHammer(t *testing.T) {
	defer assertNoGoroutineLeak(t, goroutineBaseline())
	toposearch.SetMetricsEnabled(true)
	defer toposearch.SetMetricsEnabled(false)
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 13)
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048, Parallelism: 4, Speculation: 2, Shards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	queries := []toposearch.SearchQuery{
		{K: 5, Method: "fast-top-k-et", Trace: true},
		{K: 3, Method: "fast-top-k-opt", Cons2: []toposearch.Constraint{{Column: "type", Equals: "mRNA"}}},
		{Method: "fast-top", Shards: 2},
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := queries[w%len(queries)]
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.SearchContext(ctx, q); err != nil {
					t.Errorf("search during scrape hammer: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := toposearch.WriteMetricsText(&buf); err != nil {
				t.Errorf("scrape during hammer: %v", err)
				return
			}
			if err := toposearch.WriteMetricsJSON(io.Discard); err != nil {
				t.Errorf("json snapshot during hammer: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 3; i++ {
		p := int64(3_920_000 + i)
		d := int64(4_920_000 + i)
		if err := db.ApplyBatch([]toposearch.Update{
			toposearch.InsertEntity(toposearch.Protein, p, map[string]string{"desc": fmt.Sprintf("obs hammer protein %d kwsel50", i)}),
			toposearch.InsertEntity(toposearch.DNA, d, map[string]string{"type": "mRNA", "desc": "obs hammer dna"}),
			toposearch.InsertRelationship("encodes", p, d),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RefreshContext(ctx); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestObsSearcherStatsLifecycle checks satellite 1: SearcherStats is a
// faithful snapshot of the registry-backed counters, the searcher's
// labeled series appear in the exposition while it lives, and Close
// retires them (while Stats keeps answering).
func TestObsSearcherStatsLifecycle(t *testing.T) {
	toposearch.SetMetricsEnabled(true)
	defer toposearch.SetMetricsEnabled(false)
	ctx := context.Background()
	db, err := toposearch.Synthetic(1, 17)
	if err != nil {
		t.Fatal(err)
	}

	scrapeSIDs := func() map[string]bool {
		var buf bytes.Buffer
		if err := toposearch.WriteMetricsText(&buf); err != nil {
			t.Fatal(err)
		}
		sids := map[string]bool{}
		for _, line := range strings.Split(buf.String(), "\n") {
			if !strings.HasPrefix(line, "toposearch_searcher_inflight{searcher=\"") {
				continue
			}
			rest := strings.TrimPrefix(line, "toposearch_searcher_inflight{searcher=\"")
			if i := strings.IndexByte(rest, '"'); i >= 0 {
				sids[rest[:i]] = true
			}
		}
		return sids
	}

	before := scrapeSIDs()
	s, err := db.NewSearcherContext(ctx, toposearch.Protein, toposearch.DNA, toposearch.SearcherConfig{
		MaxLen: 3, PruneThreshold: 8, MaxCombinations: 2048, MaxInflight: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sid string
	for id := range scrapeSIDs() {
		if !before[id] {
			sid = id
		}
	}
	if sid == "" {
		t.Fatal("new searcher registered no labeled series")
	}
	if !strings.HasPrefix(sid, toposearch.Protein+"-"+toposearch.DNA+"#") {
		t.Fatalf("searcher series id %q has unexpected shape", sid)
	}

	for i := 0; i < 3; i++ {
		if _, err := s.SearchContext(ctx, toposearch.SearchQuery{K: 3, Method: "fast-top-k-opt"}); err != nil {
			t.Fatal(err)
		}
	}

	// Cancelled-while-queued: both admission slots are held by fills
	// sleeping at the injected cache.fill delay, a third query queues,
	// and its context is cancelled. The "canceled" outcome must count it
	// — the silent-exit path used to return without touching any
	// admission counter, so queued cancellations vanished from the
	// Admitted + Rejected accounting.
	if err := fault.Enable(1, fault.Rule{Point: "cache.fill", Delay: 400 * time.Millisecond, DelayOnly: true}); err != nil {
		t.Fatal(err)
	}
	defer fault.Disable()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		q := toposearch.SearchQuery{K: 2, Method: "fast-top-k",
			Cons1: []toposearch.Constraint{{Column: "desc", Keyword: fmt.Sprintf("kwsel%d", 15+35*i)}}}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.SearchContext(ctx, q); err != nil {
				t.Errorf("slot-holding search: %v", err)
			}
		}()
	}
	waitFor := func(what string, cond func(toposearch.SearcherStats) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond(s.Stats()) {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s: %+v", what, s.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("both slots held", func(st toposearch.SearcherStats) bool { return st.Inflight == 2 })
	cctx, cancel := context.WithCancel(ctx)
	queuedErr := make(chan error, 1)
	go func() {
		_, err := s.SearchContext(cctx, toposearch.SearchQuery{K: 1, Method: "fast-top-k"})
		queuedErr <- err
	}()
	waitFor("third query queued", func(st toposearch.SearcherStats) bool { return st.Waiting == 1 })
	cancel()
	if err := <-queuedErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled-while-queued query: got %v, want context.Canceled", err)
	}
	wg.Wait()
	fault.Disable()

	st := s.Stats()
	if st.Admitted != 5 {
		t.Fatalf("Stats().Admitted = %d, want 5", st.Admitted)
	}
	if st.Canceled != 1 {
		t.Fatalf("Stats().Canceled = %d, want 1", st.Canceled)
	}
	if st.Inflight != 0 || st.Waiting != 0 {
		t.Fatalf("Stats() reports %d inflight / %d waiting after quiescence", st.Inflight, st.Waiting)
	}
	var buf bytes.Buffer
	if err := toposearch.WriteMetricsText(&buf); err != nil {
		t.Fatal(err)
	}
	admitted := fmt.Sprintf("toposearch_searcher_admission_total{searcher=%q,outcome=\"admitted\"} 5", sid)
	if !strings.Contains(buf.String(), admitted) {
		t.Fatalf("exposition missing %q", admitted)
	}
	canceled := fmt.Sprintf("toposearch_searcher_admission_total{searcher=%q,outcome=\"canceled\"} 1", sid)
	if !strings.Contains(buf.String(), canceled) {
		t.Fatalf("exposition missing %q", canceled)
	}

	s.Close()
	if after := scrapeSIDs(); after[sid] {
		t.Fatalf("series for %q survived Close", sid)
	}
	if st := s.Stats(); st.Admitted != 5 || st.Canceled != 1 {
		t.Fatalf("Stats() after Close = %d admitted / %d canceled, want 5 / 1", st.Admitted, st.Canceled)
	}
}
