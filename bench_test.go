// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design decisions called out in
// DESIGN.md. The full paper-layout tables are printed by cmd/benchtab;
// these testing.B benchmarks measure the same code paths one cell at a
// time so regressions are visible in -bench output.
package toposearch_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"toposearch/internal/biozon"
	"toposearch/internal/canon"
	"toposearch/internal/core"
	"toposearch/internal/experiments"
	"toposearch/internal/methods"
	"toposearch/internal/optimizer"
	"toposearch/internal/ranking"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

// env lazily builds the shared benchmark environment (scale 1 keeps
// every sub-benchmark in the millisecond range; cmd/benchtab runs the
// same experiments at larger scales).
func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.NewEnv(context.Background(), experiments.Setup{
			Scale: 1, Seed: 42, PruneThreshold: 3, L: 3, MaxPathsPerClass: 64,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// BenchmarkPrecompute measures the offline Topology Computation module
// (Section 4.1): building AllTops for the Protein-DNA pair.
func BenchmarkPrecompute(b *testing.B) {
	e := env(b)
	opts := core.Options{MaxLen: 3, MaxCombinations: 4096, MaxPathsPerClass: 64}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compute(context.Background(), e.G, e.SG, [][2]string{experiments.PairPD}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComputeParallel measures the offline Topology Computation
// module across worker counts: the same AllTops computation for every
// Table 1 entity-set pair, sharded over 1, 2, 4 and 8 workers. The
// workers=1 case is the sequential baseline; cmd/benchtab exposes the
// same knob as -workers so the offline-phase speedup can be reported
// at larger scales.
func BenchmarkComputeParallel(b *testing.B) {
	e := env(b)
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := core.Options{
				MaxLen: 3, MaxCombinations: 4096, MaxPathsPerClass: 64,
				Parallelism: w,
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compute(context.Background(), e.G, e.SG,
					experiments.Table1Pairs(), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8SchemaEnumeration regenerates Figure 8: all possible
// 2-topologies relating Proteins and DNAs, enumerated from the schema.
func BenchmarkFig8SchemaEnumeration(b *testing.B) {
	sg := biozon.SchemaGraph()
	b.ReportAllocs()
	var n int
	for i := 0; i < b.N; i++ {
		res, err := core.EnumerateSchemaTopologies(sg, biozon.Protein, biozon.DNA,
			core.SchemaEnumOptions{MaxLen: 2})
		if err != nil {
			b.Fatal(err)
		}
		n = len(res.Canons)
	}
	b.ReportMetric(float64(n), "topologies")
}

// BenchmarkFig11FrequencyDistribution regenerates Figure 11: the
// topology frequency distributions and their Zipf fit for the four
// entity-set pairs the paper plots.
func BenchmarkFig11FrequencyDistribution(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	var slope float64
	for i := 0; i < b.N; i++ {
		series := experiments.Fig11(e)
		slope = series[0].Slope
	}
	b.ReportMetric(slope, "loglog-slope-PD")
}

// BenchmarkFig12TopTopologies regenerates Figure 12: the details of the
// ten most frequent Protein-DNA topologies.
func BenchmarkFig12TopTopologies(b *testing.B) {
	e := env(b)
	b.ReportAllocs()
	var paths int
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12(e, 10)
		paths = 0
		for _, r := range rows {
			if r.IsPath {
				paths++
			}
		}
	}
	b.ReportMetric(float64(paths), "path-shaped-of-top10")
}

// BenchmarkTable1Space measures the Topology Pruning module
// (Section 4.2): deriving LeftTops and ExcpTops from AllTops for every
// Table 1 entity-set pair, reporting the achieved space ratio.
func BenchmarkTable1Space(b *testing.B) {
	e := env(b)
	for _, pair := range experiments.Table1Pairs() {
		pair := pair
		b.Run(pair[0]+"_"+pair[1], func(b *testing.B) {
			st := e.Store(pair)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st.Res.Prune(e.Setup.PruneThreshold)
			}
			r := st.Space()
			b.ReportMetric(100*r.Ratio, "space-%")
		})
	}
}

// BenchmarkTable2Methods measures each of the nine evaluation methods
// on the Protein-Interaction pair across the protein predicate
// selectivities (interaction predicate fixed at medium, ranking fixed
// at domain, k=10) — one cell per sub-benchmark of the paper's Table 2.
func BenchmarkTable2Methods(b *testing.B) {
	e := env(b)
	st := e.Store(experiments.PairPI)
	p2, err := experiments.PredFor(st.T2, "medium")
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range methods.AllMethods() {
		for _, sel := range experiments.SelLevels {
			m, sel := m, sel
			b.Run(fmt.Sprintf("%s/protein=%s", m, sel), func(b *testing.B) {
				p1, err := experiments.PredFor(st.T1, sel)
				if err != nil {
					b.Fatal(err)
				}
				q := methods.Query{Pred1: p1, Pred2: p2, K: 10, Ranking: ranking.Domain}
				if m == methods.MethodSQL || m == methods.MethodFullTop || m == methods.MethodFastTop {
					q.K, q.Ranking = 0, ""
				}
				b.ReportAllocs()
				var res methods.QueryResult
				for i := 0; i < b.N; i++ {
					var runErr error
					res, runErr = st.Run(m, q)
					if runErr != nil {
						b.Fatal(runErr)
					}
				}
				b.ReportMetric(float64(len(res.Items)), "results")
			})
		}
	}
}

// BenchmarkFastTop measures the parallel online Fast-Top path across
// query worker counts: the sharded LeftTops join plus one existence
// check per pruned topology, the checks sharded over the same pool.
// The selective protein predicate makes the pruned checks drain their
// plans (few witnesses), which is the regime the parallel pool speeds
// up; results are byte-identical at every worker count. cmd/benchtab
// -exp benchonline reports the same sweep at larger scales as
// BENCH_online.json.
func BenchmarkFastTop(b *testing.B) {
	e := env(b)
	st := e.Store(experiments.PairPI)
	p1, err := experiments.PredFor(st.T1, "selective")
	if err != nil {
		b.Fatal(err)
	}
	p2, err := experiments.PredFor(st.T2, "medium")
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			q := methods.Query{Pred1: p1, Pred2: p2, Parallelism: w}
			b.ReportAllocs()
			var res methods.QueryResult
			for i := 0; i < b.N; i++ {
				var runErr error
				res, runErr = st.FastTop(q)
				if runErr != nil {
					b.Fatal(runErr)
				}
			}
			b.ReportMetric(float64(len(res.Items)), "results")
		})
	}
}

// BenchmarkETTop measures the early-termination method (Fast-Top-k-ET)
// across worker counts and speculation widths. Its DGJ stack does not
// shard across plain workers (early termination is a serial decision)
// — latency should NOT vary with workers — but it does race
// speculative segment workers, so the speculation dimension is in the
// perf trajectory too.
func BenchmarkETTop(b *testing.B) {
	e := env(b)
	st := e.Store(experiments.PairPI)
	p1, err := experiments.PredFor(st.T1, "medium")
	if err != nil {
		b.Fatal(err)
	}
	p2, err := experiments.PredFor(st.T2, "medium")
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			q := methods.Query{Pred1: p1, Pred2: p2, K: 10,
				Ranking: ranking.Domain, Parallelism: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := st.FastTopKET(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, s := range []int{2, 8} {
		s := s
		b.Run(fmt.Sprintf("speculation=%d", s), func(b *testing.B) {
			q := methods.Query{Pred1: p1, Pred2: p2, K: 10,
				Ranking: ranking.Domain, Speculation: s}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := st.FastTopKET(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSQLMethod measures the Section 3.1 strawman across worker
// counts: the per-candidate-topology queries are independent, so the
// slowest method in Table 2 is also the most parallelizable one.
func BenchmarkSQLMethod(b *testing.B) {
	e := env(b)
	st := e.Store(experiments.PairPI)
	p1, err := experiments.PredFor(st.T1, "selective")
	if err != nil {
		b.Fatal(err)
	}
	p2, err := experiments.PredFor(st.T2, "medium")
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			q := methods.Query{Pred1: p1, Pred2: p2, Parallelism: w}
			b.ReportAllocs()
			var res methods.QueryResult
			for i := 0; i < b.N; i++ {
				var runErr error
				res, runErr = st.SQLMethod(q)
				if runErr != nil {
					b.Fatal(runErr)
				}
			}
			b.ReportMetric(float64(len(res.Items)), "results")
		})
	}
}

var (
	l4Once sync.Once
	l4St   *methods.Store
	l4Err  error
)

// l4Store builds (once) an l=4 Protein-Interaction store on a fresh
// copy of the benchmark database, with the Appendix B
// weak-relationship rules applied as the paper proposes.
func l4Store(b *testing.B) *methods.Store {
	b.Helper()
	l4Once.Do(func() {
		cfg := biozon.DefaultConfig(1)
		db := biozon.Generate(cfg)
		l4St, l4Err = methods.BuildStore(context.Background(), db, biozon.SchemaGraph(),
			biozon.Protein, biozon.Interaction, methods.StoreConfig{
				Opts: core.Options{
					MaxLen:           4,
					MaxCombinations:  2048,
					MaxPathsPerClass: 32,
					Weak:             core.DefaultWeakRules(),
				},
				PruneThreshold: 3,
				Scores:         ranking.Schemes(),
			})
	})
	if l4Err != nil {
		b.Fatal(l4Err)
	}
	return l4St
}

// BenchmarkTable3PathLen4 measures Fast-Top-k-Opt on an l=4 store
// across protein selectivities — the paper's Table 3.
func BenchmarkTable3PathLen4(b *testing.B) {
	st := l4Store(b)
	p2, err := experiments.PredFor(st.T2, "medium")
	if err != nil {
		b.Fatal(err)
	}
	for _, sel := range experiments.SelLevels {
		sel := sel
		b.Run("protein="+sel, func(b *testing.B) {
			p1, err := experiments.PredFor(st.T1, sel)
			if err != nil {
				b.Fatal(err)
			}
			q := methods.Query{Pred1: p1, Pred2: p2, K: 10, Ranking: ranking.Domain}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := st.FastTopKOpt(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*st.Space().Ratio, "space-%")
		})
	}
}

// BenchmarkVaryK measures Fast-Top-k-Opt for growing k (Section 6.2.4).
func BenchmarkVaryK(b *testing.B) {
	e := env(b)
	st := e.Store(experiments.PairPI)
	p1, _ := experiments.PredFor(st.T1, "medium")
	p2, _ := experiments.PredFor(st.T2, "medium")
	for _, k := range []int{1, 10, 50, 100} {
		k := k
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			q := methods.Query{Pred1: p1, Pred2: p2, K: k, Ranking: ranking.Domain}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := st.FastTopKOpt(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInstanceRetrieval measures materializing the instances and a
// witness subgraph for a frequent vs a rare topology (Section 6.2.4:
// "1-50 seconds depending on the frequency of the topology").
func BenchmarkInstanceRetrieval(b *testing.B) {
	e := env(b)
	st := e.Store(experiments.PairPD)
	pd := st.Res.Pair("Protein", "DNA")
	ids, freqs := pd.FrequencyRank()
	if len(ids) < 2 {
		b.Skip("not enough topologies")
	}
	cases := []struct {
		name string
		idx  int
	}{
		{"frequent", 0},
		{"rare", len(ids) - 1},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			tid := ids[c.idx]
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				inst := st.Res.Instances("Protein", "DNA", tid)
				if len(inst) > 0 {
					core.WitnessFor(e.G, st.Res.Reg, inst[0][0], inst[0][1], tid, st.Cfg.Opts)
				}
			}
			b.ReportMetric(float64(freqs[c.idx]), "freq")
		})
	}
}

// BenchmarkAblationNoPruning isolates the pruning benefit: Fast-Top
// with the real threshold vs a store whose threshold is effectively
// infinite (degenerating to Full-Top's table sizes).
func BenchmarkAblationNoPruning(b *testing.B) {
	e := env(b)
	st := e.Store(experiments.PairPI)
	p1, _ := experiments.PredFor(st.T1, "medium")
	p2, _ := experiments.PredFor(st.T2, "medium")
	q := methods.Query{Pred1: p1, Pred2: p2}
	b.Run("pruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := st.FastTop(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unpruned", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := st.FullTop(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationHDGJvsIDGJ compares the two DGJ implementations
// head-to-head on the same ET query (the paper only reports best/worst
// plans for one cell).
func BenchmarkAblationHDGJvsIDGJ(b *testing.B) {
	e := env(b)
	st := e.Store(experiments.PairPI)
	p1, _ := experiments.PredFor(st.T1, "unselective")
	p2, _ := experiments.PredFor(st.T2, "unselective")
	for _, hdgj := range []bool{false, true} {
		hdgj := hdgj
		name := "idgj"
		if hdgj {
			name = "hdgj"
		}
		b.Run(name, func(b *testing.B) {
			q := methods.Query{Pred1: p1, Pred2: p2, K: 10,
				Ranking: ranking.Rare, UseHDGJ: hdgj}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := st.FullTopKET(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCostModel measures the optimizer's cost model
// itself: the Theorem 1 dynamic program over a realistic group profile.
func BenchmarkAblationCostModel(b *testing.B) {
	cards := make([]float64, 800)
	for i := range cards {
		cards[i] = float64(1 + i%40)
	}
	stack := optimizer.StackStats{
		Cards: cards,
		Joins: []optimizer.JoinStats{
			{N: 20000, I: optimizer.DefaultProbeCostET, Rho: 0.5, S: 1.0 / 20000},
			{N: 20000, I: optimizer.DefaultProbeCostET, Rho: 0.5, S: 1.0 / 20000},
		},
	}
	b.ReportAllocs()
	var cost float64
	for i := 0; i < b.N; i++ {
		cost = stack.ETCost(10)
	}
	b.ReportMetric(cost, "predicted-cost")
}

// BenchmarkCanonScaling measures the canonicalizer across topology
// sizes, the core of topology identity.
func BenchmarkCanonScaling(b *testing.B) {
	for _, n := range []int{4, 8, 12, 16} {
		n := n
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			g := &canon.Graph{}
			labels := []string{"Protein", "DNA", "Unigene", "Interaction"}
			for i := 0; i < n; i++ {
				g.Labels = append(g.Labels, labels[i%len(labels)])
			}
			for i := 0; i < n; i++ {
				g.Edges = append(g.Edges, canon.Edge{U: i, V: (i + 1) % n, Label: "e"})
				if i%3 == 0 && i+2 < n {
					g.Edges = append(g.Edges, canon.Edge{U: i, V: i + 2, Label: "f"})
				}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				canon.Canonical(g)
			}
		})
	}
}
