// Command topsearch runs a topology search over a generated
// Biozon-like database from the command line.
//
// Usage:
//
//	topsearch [flags]
//
//	-es1/-es2        entity sets (default Protein / DNA)
//	-kw1/-kw2        keyword constraint on the desc column of each side
//	-eq2             equality constraint col=value on entity set 2
//	-k               top-k (0 = all results)
//	-rank            ranking: freq | rare | domain
//	-method          evaluation method (default fast-top-k-opt / fast-top)
//	-scale/-seed     synthetic database size and seed
//	-figure3         use the paper's Figure 3 example database
//	-l               path-length bound
//	-prune           pruning threshold (-1 disables)
//	-explain         print the optimizer's plan choice
//	-instances       print up to N instance pairs per topology
//	-workers         worker count for precomputation and queries (0 = all cores)
//	-speculation     speculative ET width (0/1 = sequential; results identical)
//	-shards          scatter-gather shard count (0/1 = single store; results identical)
//	-apply           replay a JSONL mutation batch, then Refresh incrementally
//	-repeat          run the query N times, timing each (shows result-cache hits)
//	-cachebytes      result-cache memory bound (0 = 64 MiB default, negative disables)
//	-metrics-addr    serve /metrics, /statsz and /debug/pprof on this address
//	-trace           record a per-query trace and print the span tree
//	-trace-json      like -trace, but print the span tree as JSON
//	-stats           print a metrics snapshot (cache, admission, refresh) after the run
//
// The -apply file carries one mutation per line:
//
//	{"entity": "Protein", "id": 1900001, "attrs": {"desc": "novel enzyme"}}
//	{"rel": "encodes", "a": 1900001, "b": 2000005}
//
// The batch is applied after the offline phase, the searcher refreshes
// incrementally (recomputing only the affected start-node frontier),
// and the query then runs against the updated topology tables —
// demonstrating live updates without a from-scratch rebuild.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"toposearch"
	"toposearch/internal/serve"
)

// readBatch parses a JSONL mutation file into staged updates (the
// format is shared with toposerve's POST /v1/apply, see serve.ParseBatch).
func readBatch(path string) ([]toposearch.Update, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return serve.ParseBatch(f, path)
}

func main() {
	var (
		es1     = flag.String("es1", toposearch.Protein, "first entity set")
		es2     = flag.String("es2", toposearch.DNA, "second entity set")
		kw1     = flag.String("kw1", "", "keyword constraint on entity set 1 desc")
		kw2     = flag.String("kw2", "", "keyword constraint on entity set 2 desc")
		eq2     = flag.String("eq2", "", "equality constraint col=value on entity set 2")
		k       = flag.Int("k", 10, "top-k (0 = all)")
		rank    = flag.String("rank", toposearch.RankDomain, "ranking: freq|rare|domain")
		method  = flag.String("method", "", "evaluation method override")
		scale   = flag.Int("scale", 2, "synthetic database scale")
		seed    = flag.Int64("seed", 42, "generator seed")
		figure3 = flag.Bool("figure3", false, "use the paper's Figure 3 database")
		l       = flag.Int("l", 3, "path length bound")
		prune   = flag.Int("prune", 8, "pruning threshold (-1 disables)")
		explain = flag.Bool("explain", false, "print the optimizer plan")
		instN   = flag.Int("instances", 2, "instance pairs to print per topology")
		weak    = flag.Bool("weak-pruning", false, "apply Appendix B weak-relationship rules")
		workers = flag.Int("workers", 0, "worker count for the offline precomputation and online queries (0 = all cores)")
		spec    = flag.Int("speculation", 0, "speculative ET width: race this many segment workers over the group stream (0/1 = sequential; results identical)")
		shards  = flag.Int("shards", 0, "scatter-gather shard count: partition the search across this many cost-weighted shard executors with global bound exchange (0/1 = single store; results identical)")
		apply   = flag.String("apply", "", "JSONL mutation batch to apply and Refresh before querying")
		repeat  = flag.Int("repeat", 1, "run the query this many times, timing each (repeats hit the result cache)")
		cacheB  = flag.Int64("cachebytes", 0, "result-cache memory bound in bytes (0 = 64 MiB default, negative disables)")
		metrics = flag.String("metrics-addr", "", "serve /metrics, /statsz and /debug/pprof on this address (e.g. :9090) and enable telemetry recording")
		traceF  = flag.Bool("trace", false, "record a per-query trace and print the span tree")
		traceJ  = flag.Bool("trace-json", false, "record a per-query trace and print the span tree as JSON")
		statsF  = flag.Bool("stats", false, "enable telemetry recording and print a metrics snapshot (cache, admission, refresh) after the run")
	)
	flag.Parse()

	if *metrics != "" {
		srv, bound, err := toposearch.ServeMetrics(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics (pprof at /debug/pprof/, JSON at /statsz)\n", bound)
	}
	if *statsF {
		toposearch.SetMetricsEnabled(true)
	}

	// Ctrl-C aborts the offline computation and any running query with
	// a context error instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var db *toposearch.DB
	var err error
	if *figure3 {
		db, err = toposearch.Figure3()
	} else {
		db, err = toposearch.Synthetic(*scale, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d entities, %d relationships (entity sets: %s)\n",
		db.NumEntities(), db.NumRelationships(), strings.Join(db.EntitySets(), ", "))

	cfg := toposearch.SearcherConfig{
		MaxLen:          *l,
		PruneThreshold:  *prune,
		MaxCombinations: 4096,
		WeakPruning:     *weak,
		Parallelism:     *workers,
		Speculation:     *spec,
		Shards:          *shards,
		CacheBytes:      *cacheB,
	}
	s, err := db.NewSearcherContext(ctx, *es1, *es2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("precomputed %d topologies for %s-%s (%d pruned)\n\n",
		s.TopologyCount(), *es1, *es2, s.PrunedCount())

	if *apply != "" {
		ups, err := readBatch(*apply)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if err := db.ApplyBatch(ups); err != nil {
			log.Fatal(err)
		}
		applySec := time.Since(start)
		start = time.Now()
		edges, err := s.RefreshContext(ctx)
		if err != nil {
			log.Fatal(err)
		}
		refreshSec := time.Since(start)
		db.Compact()
		fmt.Printf("applied %d mutations in %v; incremental refresh of %d new relationships in %v\n",
			len(ups), applySec.Round(time.Microsecond), edges, refreshSec.Round(time.Microsecond))
		if routing := s.ShardRouting(); len(routing) > 0 {
			fmt.Printf("delta routing (affected starts per shard): %v\n", routing)
		}
		fmt.Printf("database now: %d entities, %d relationships; %d topologies (%d pruned)\n\n",
			db.NumEntities(), db.NumRelationships(), s.TopologyCount(), s.PrunedCount())
	}

	q := toposearch.SearchQuery{K: *k, Ranking: *rank, Method: *method, Trace: *traceF || *traceJ}
	if *kw1 != "" {
		q.Cons1 = append(q.Cons1, toposearch.Constraint{Column: "desc", Keyword: *kw1})
	}
	if *kw2 != "" {
		q.Cons2 = append(q.Cons2, toposearch.Constraint{Column: "desc", Keyword: *kw2})
	}
	if *eq2 != "" {
		col, val, ok := strings.Cut(*eq2, "=")
		if !ok {
			fmt.Fprintln(os.Stderr, "-eq2 must be col=value")
			os.Exit(2)
		}
		q.Cons2 = append(q.Cons2, toposearch.Constraint{Column: col, Equals: val})
	}

	if *explain {
		plan, err := s.Explain(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(plan)
	}

	// -repeat re-runs the identical query: the first run pays the full
	// method execution, repeats answer from the generation-tagged result
	// cache (byte-identical, see SearchResult.CacheHit).
	if *repeat < 1 {
		*repeat = 1
	}
	var res *toposearch.SearchResult
	for i := 0; i < *repeat; i++ {
		start := time.Now()
		res, err = s.SearchContext(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		if *repeat > 1 {
			outcome := "miss"
			if res.CacheHit {
				outcome = "hit"
			}
			fmt.Printf("run %d: %v (cache %s)\n", i+1, time.Since(start), outcome)
		}
	}
	if *repeat > 1 {
		cs := s.CacheStats()
		fmt.Printf("cache: %d hits / %d misses, %d evicted, %d invalidated, %d carried forward, %d entries (%d bytes) resident\n\n",
			cs.Hits, cs.Misses, cs.Evictions, cs.Invalidated, cs.CarriedForward, cs.Entries, cs.Bytes)
	}
	fmt.Printf("%d topologies (method %s", len(res.Topologies), res.Method)
	if res.Plan != "" {
		fmt.Printf(", plan %s", res.Plan)
	}
	if res.Speculation > 1 {
		fmt.Printf(", speculation %d, wasted work %d", res.Speculation, res.WastedWork)
	}
	if res.Shards > 1 {
		fmt.Printf(", shards %d", res.Shards)
	}
	fmt.Println("):")
	if res.Shards > 1 {
		for _, st := range res.ShardStats {
			status := "complete"
			if st.Pruned {
				status = "pruned by bound exchange"
			}
			fmt.Printf("  shard %d: work=%d results=%d (%s)\n", st.Shard, st.Work, st.Witnesses, status)
		}
	}
	for i, tp := range res.Topologies {
		fmt.Printf("\n#%d topology %d  score=%d freq=%d  %d nodes / %d edges / %d class(es)\n",
			i+1, tp.ID, tp.Score, tp.Frequency, tp.Nodes, tp.Edges, tp.Classes)
		fmt.Printf("   %s\n", tp.Structure)
		for _, pair := range s.Instances(tp.ID, *instN) {
			fmt.Printf("   instance %d-%d\n", pair[0], pair[1])
			if lines, ok := s.Witness(pair[0], pair[1], tp.ID); ok {
				for _, ln := range lines {
					fmt.Printf("     %s\n", ln)
				}
			}
		}
	}

	if *traceF && res.Trace != nil {
		fmt.Println("\ntrace:")
		res.Trace.Render(os.Stdout)
	}
	if *traceJ && res.Trace != nil {
		out, err := json.MarshalIndent(res.Trace, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s\n", out)
	}
	if *statsF {
		printStats(s)
	}
}

// statsFamilies selects the metric families -stats prints: the result
// cache, admission control, refresh/apply and delta-size counters.
var statsFamilies = []string{
	"toposearch_cache_",
	"toposearch_searcher_",
	"toposearch_refresh_",
	"toposearch_apply_",
	"toposearch_delta_bytes",
	"toposearch_query_duration_seconds_count",
}

// printStats prints the searcher's own counters plus a filtered view of
// the engine metric registry (the same samples GET /metrics serves).
func printStats(s *toposearch.Searcher) {
	st := s.Stats()
	cs := s.CacheStats()
	fmt.Println("\nstats:")
	fmt.Printf("  admission: %d admitted, %d rejected, %d degraded; %d partials, %d panics contained\n",
		st.Admitted, st.Rejected, st.Degraded, st.Partials, st.PanicsContained)
	fmt.Printf("  cache: %d hits / %d misses, %d evicted, %d invalidated, %d carried forward, %d flushes; %d entries (%d bytes) resident\n",
		cs.Hits, cs.Misses, cs.Evictions, cs.Invalidated, cs.CarriedForward, cs.Flushes, cs.Entries, cs.Bytes)
	var buf strings.Builder
	if err := toposearch.WriteMetricsText(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  metrics:")
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		for _, fam := range statsFamilies {
			if strings.HasPrefix(line, fam) {
				fmt.Printf("    %s\n", line)
				break
			}
		}
	}
}
