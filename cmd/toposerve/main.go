// Command toposerve runs the toposearch serving daemon: a generated
// Biozon-like database behind an HTTP JSON API, with one pooled
// searcher per entity-set pair, admission control, a result cache and
// live mutation batches.
//
// Usage:
//
//	toposerve [flags]
//
//	-addr            listen address (default :8844)
//	-scale/-seed     synthetic database size and seed
//	-figure3         use the paper's Figure 3 example database
//	-es1/-es2        default entity-set pair (prewarmed at startup)
//	-l/-prune        path-length bound / pruning threshold
//	-workers         worker count for precomputation and queries
//	-speculation     speculative ET width
//	-shards          scatter-gather shard count
//	-cachebytes      result-cache memory bound
//	-max-inflight    admission: concurrent queries per searcher
//	-max-queue       admission: bounded wait queue per searcher
//	-queue-timeout   admission: max queue wait before shedding
//	-default-timeout deadline for requests that send none (0 = none)
//	-max-timeout     cap on client-requested deadlines (0 = uncapped)
//	-compact-every   compact after every n-th refresh round
//	-no-prewarm      skip building the default pair at startup
//
// Endpoints: POST /v1/search, POST /v1/apply (JSONL body, ?sync=1 for
// an inline refresh), GET /v1/stats, GET /metrics (+/statsz,
// /debug/pprof). SIGINT/SIGTERM drain in-flight requests, stop the
// refresh loop and close every searcher before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"toposearch"
	"toposearch/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8844", "listen address")
		scale    = flag.Int("scale", 2, "synthetic database scale")
		seed     = flag.Int64("seed", 42, "generator seed")
		figure3  = flag.Bool("figure3", false, "use the paper's Figure 3 database")
		es1      = flag.String("es1", toposearch.Protein, "default first entity set")
		es2      = flag.String("es2", toposearch.DNA, "default second entity set")
		l        = flag.Int("l", 3, "path length bound")
		prune    = flag.Int("prune", 8, "pruning threshold (-1 disables)")
		workers  = flag.Int("workers", 0, "worker count (0 = all cores)")
		spec     = flag.Int("speculation", 0, "speculative ET width")
		shards   = flag.Int("shards", 0, "scatter-gather shard count")
		cacheB   = flag.Int64("cachebytes", 0, "result-cache bound in bytes (0 = 64 MiB default, negative disables)")
		maxInfl  = flag.Int("max-inflight", 16, "admission: concurrent queries per searcher (0 = unbounded)")
		maxQueue = flag.Int("max-queue", 64, "admission: bounded wait queue per searcher")
		queueTO  = flag.Duration("queue-timeout", 2*time.Second, "admission: max queue wait before shedding")
		defTO    = flag.Duration("default-timeout", 0, "deadline for requests that send none (0 = none)")
		maxTO    = flag.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = uncapped)")
		compact  = flag.Int("compact-every", 1, "compact after every n-th refresh round (negative disables)")
		noWarm   = flag.Bool("no-prewarm", false, "skip building the default pair at startup")
	)
	flag.Parse()

	log := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	toposearch.SetMetricsEnabled(true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var db *toposearch.DB
	var err error
	if *figure3 {
		db, err = toposearch.Figure3()
	} else {
		db, err = toposearch.Synthetic(*scale, *seed)
	}
	if err != nil {
		log.Error("database build failed", "err", err.Error())
		os.Exit(1)
	}
	log.Info("database ready", "entities", db.NumEntities(), "relationships", db.NumRelationships())

	sv, err := serve.New(serve.Config{
		DB: db,
		Searcher: toposearch.SearcherConfig{
			MaxLen: *l, PruneThreshold: *prune, MaxCombinations: 4096,
			Parallelism: *workers, Speculation: *spec, Shards: *shards,
			CacheBytes:  *cacheB,
			MaxInflight: *maxInfl, MaxQueue: *maxQueue, QueueTimeout: *queueTO,
		},
		DefaultES1: *es1, DefaultES2: *es2,
		DefaultTimeout: *defTO, MaxTimeout: *maxTO,
		CompactEvery: *compact,
		Log:          log,
	})
	if err != nil {
		log.Error("server build failed", "err", err.Error())
		os.Exit(1)
	}
	if !*noWarm {
		if err := sv.Warm(ctx, *es1, *es2); err != nil {
			log.Error("prewarm failed", "err", err.Error())
			os.Exit(1)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: sv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Info("listening", "addr", *addr)

	select {
	case <-ctx.Done():
	case err := <-errCh:
		log.Error("listener failed", "err", err.Error())
		os.Exit(1)
	}

	// Graceful drain: stop accepting, let in-flight requests finish
	// (bounded), then close the pool — each Close drains that
	// searcher's own in-flight queries.
	log.Info("shutting down")
	dctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Error("http shutdown", "err", err.Error())
	}
	if err := sv.Shutdown(dctx); err != nil {
		log.Error("server shutdown", "err", err.Error())
		os.Exit(1)
	}
	log.Info("stopped")
}
