// Command benchtab regenerates the paper's evaluation tables and
// figures on a synthetic Biozon-like database and prints them in the
// paper's layout.
//
// Usage:
//
//	benchtab -exp table1|table2|table3|fig8|fig11|fig12|varyk|instances|benchonline|benchet|benchshard|benchstorage|benchupdate|benchcache|benchchaos|benchobs|benchserve|all [flags]
//
// The benchonline experiment sweeps the online evaluation methods
// across query worker counts and writes the measurements to
// -benchout (default BENCH_online.json), so successive releases have a
// query-latency trajectory to compare against. The benchet experiment
// sweeps the early-termination methods across speculation widths on an
// unselective query (few qualifying pairs, deep group-stream crawl),
// verifies each speculative run byte-identical to the sequential one,
// and writes -etout (default BENCH_et.json). The benchshard experiment
// sweeps scatter-gather sharded execution across shard counts,
// verifies each sharded run byte-identical to the single-store one,
// measures the cost-weighted cut balance and the work the global
// bound exchange prunes, and writes -shardout (default
// BENCH_shard.json). The benchstorage
// experiment measures the columnar storage engine (scan, probe, build,
// Fast-Top) and the bytes-per-row footprint of the precomputed tables,
// writing -storageout (default BENCH_storage.json). The benchupdate
// experiment grows the database in live batches and records mutation
// throughput plus incremental-Refresh latency against a full offline
// rebuild (verifying the two stay byte-identical), writing -updateout
// (default BENCH_update.json); it mutates the environment, so it runs
// last. The benchcache experiment measures the searcher's
// generation-tagged result cache — hit latency against the full
// execution cost of a miss, and the hit ratio a mutating workload
// sustains through frontier-scoped invalidation — verifying every
// cached answer row-identical to a cache-off searcher, and writes
// -cacheout (default BENCH_cache.json). The benchchaos experiment
// quantifies the failure-containment layer — the per-hit price of a
// fault-injection point, admission-control behavior under an overload
// burst, and a fault-schedule survival run verified byte-identical to
// a fresh rebuild — and writes -chaosout (default BENCH_chaos.json).
// The benchobs experiment measures the telemetry layer — instrument
// micro-costs and the disabled gate, end-to-end recording and tracing
// overhead on the query mix (traced answers verified byte-identical to
// untraced), and the /metrics scrape — and writes -obsout (default
// BENCH_obs.json). The benchserve experiment boots a toposerve daemon
// in-process and replays the recorded query mix over HTTP at fixed
// target rates (open loop), reporting end-to-end latency percentiles
// per rate plus the 429 shed count of an unpaced saturation burst, and
// writes -serveout (default BENCH_serve.json). -metrics-addr serves
// /metrics, /statsz and /debug/pprof while any experiment runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"toposearch"
	"toposearch/internal/biozon"
	"toposearch/internal/core"
	"toposearch/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run")
		scale    = flag.Int("scale", 2, "synthetic database scale")
		seed     = flag.Int64("seed", 42, "generator seed")
		k        = flag.Int("k", 10, "top-k for the query experiments")
		reps     = flag.Int("reps", 3, "timing repetitions (fastest wins)")
		thr      = flag.Int("prune", 6, "pruning threshold")
		sql      = flag.Bool("sql", true, "include the SQL strawman in table2")
		workers  = flag.Int("workers", 0, "worker count for the offline precomputation and online queries (0 = all cores)")
		spec     = flag.Int("speculation", 0, "speculative ET width for table2 queries (0/1 = sequential; results identical)")
		benchout = flag.String("benchout", "BENCH_online.json", "output file for -exp benchonline")
		etout    = flag.String("etout", "BENCH_et.json", "output file for -exp benchet")
		shardout = flag.String("shardout", "BENCH_shard.json", "output file for -exp benchshard")
		storeout = flag.String("storageout", "BENCH_storage.json", "output file for -exp benchstorage")
		updout   = flag.String("updateout", "BENCH_update.json", "output file for -exp benchupdate")
		cacheout = flag.String("cacheout", "BENCH_cache.json", "output file for -exp benchcache")
		serveout = flag.String("serveout", "BENCH_serve.json", "output file for -exp benchserve")
		chaosout = flag.String("chaosout", "BENCH_chaos.json", "output file for -exp benchchaos")
		obsout   = flag.String("obsout", "BENCH_obs.json", "output file for -exp benchobs")
		metrics  = flag.String("metrics-addr", "", "serve /metrics, /statsz and /debug/pprof on this address while the experiments run")
	)
	flag.Parse()

	// Ctrl-C aborts the (long) offline precomputation cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	need := func(name string) bool { return *exp == "all" || *exp == name }

	if *metrics != "" {
		srv, bound, err := toposearch.ServeMetrics(*metrics)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics (pprof at /debug/pprof/)\n\n", bound)
	}

	// The observability benchmark toggles metrics recording itself and
	// drives the public Searcher end to end, so it runs before the
	// methods-level env is built (and never under -exp all's env).
	if need("benchobs") {
		fmt.Println("== Observability: instrument costs, recording overhead, trace equivalence, scrape ==")
		rep, err := experiments.BenchObs(ctx, *scale, *seed, *reps)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintObsBench(os.Stdout, rep)
		if err := experiments.WriteObsBench(rep, *obsout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *obsout)
		if *exp != "all" {
			return
		}
	}

	// Figure 8 needs no database.
	if need("fig8") {
		fmt.Println("== Figure 8: all possible 2-topologies relating Protein and DNA ==")
		res, err := core.EnumerateSchemaTopologies(biozon.SchemaGraph(),
			biozon.Protein, biozon.DNA, core.SchemaEnumOptions{MaxLen: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d possible 2-topologies (from %d glued unions):\n", len(res.Canons), res.Unions)
		for i, c := range res.Canons {
			fmt.Printf("  %2d. %s\n", i+1, c)
		}
		fmt.Println("\nl=3 blow-up (the paper counts 88453 over ten schema paths):")
		start := time.Now()
		res3, err := core.EnumerateSchemaTopologies(biozon.SchemaGraph(),
			biozon.Protein, biozon.DNA,
			core.SchemaEnumOptions{MaxLen: 3, MaxResults: 100000, MaxUnions: 3000000})
		if err != nil {
			log.Fatal(err)
		}
		trunc := ""
		if res3.Truncated {
			trunc = "+ (truncated)"
		}
		fmt.Printf("  %d%s distinct 3-topologies from %d unions in %v\n",
			len(res3.Canons), trunc, res3.Unions, time.Since(start).Round(time.Millisecond))
		fmt.Println()
		if *exp != "all" {
			return
		}
	}

	// The chaos benchmark drives the public Searcher end to end under
	// fault injection, so it builds its own database rather than using
	// the methods-level env.
	if need("benchchaos") {
		fmt.Println("== Failure containment: injection overhead, overload shedding, chaos survival ==")
		rep, err := experiments.BenchChaos(ctx, *scale, *seed, *reps)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintChaosBench(os.Stdout, rep)
		if err := experiments.WriteChaosBench(rep, *chaosout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *chaosout)
		if *exp != "all" {
			return
		}
	}

	// The cache benchmark drives the public Searcher end to end, so it
	// builds its own database rather than using the methods-level env.
	if need("benchcache") {
		fmt.Println("== Result cache: hit vs miss latency, hit ratio under mutation ==")
		rep, err := experiments.BenchCache(ctx, *scale, *seed, *reps)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintCacheBench(os.Stdout, rep)
		if err := experiments.WriteCacheBench(rep, *cacheout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *cacheout)
		if *exp != "all" {
			return
		}
	}

	// The serving benchmark boots a whole toposerve daemon in-process
	// and measures end-to-end HTTP latency, so it too builds its own
	// database rather than using the methods-level env.
	if need("benchserve") {
		fmt.Println("== Serving layer: open-loop HTTP load sweep, latency percentiles, 429 shedding ==")
		rep, err := experiments.BenchServe(ctx, *scale, *seed, *reps)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintServeBench(os.Stdout, rep)
		if err := experiments.WriteServeBench(rep, *serveout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *serveout)
		if *exp != "all" {
			return
		}
	}

	fmt.Printf("building environment (scale %d, seed %d, prune %d)...\n", *scale, *seed, *thr)
	start := time.Now()
	env, err := experiments.NewEnv(ctx, experiments.Setup{
		Scale: *scale, Seed: *seed, PruneThreshold: *thr, L: 3, MaxPathsPerClass: 64,
		Parallelism: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("environment ready in %v: %d entities, %d relationships\n\n",
		time.Since(start).Round(time.Millisecond), env.G.NumNodes(), env.G.NumEdges())

	if need("table1") {
		fmt.Println("== Table 1: space requirements (Full-Top vs Fast-Top) ==")
		experiments.PrintTable1(os.Stdout, experiments.Table1(env))
		fmt.Println()
	}
	if need("fig11") {
		fmt.Println("== Figure 11: distribution of topology frequency ==")
		experiments.PrintFig11(os.Stdout, experiments.Fig11(env))
		fmt.Println()
	}
	if need("fig12") {
		fmt.Println("== Figure 12: top-10 most frequent Protein-DNA 3-topologies ==")
		experiments.PrintFig12(os.Stdout, experiments.Fig12(env, 10))
		fmt.Println()
	}
	if need("table2") {
		fmt.Println("== Table 2: query time (seconds) of all methods ==")
		cells, err := experiments.Table2(env, experiments.Table2Options{
			K: *k, Reps: *reps, IncludeSQL: *sql, Speculation: *spec,
		})
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintTable2(os.Stdout, cells)
		fmt.Println()
	}
	if need("table3") {
		fmt.Println("== Table 3: l=4 space overhead and Fast-Top-k-Opt time ==")
		res, err := experiments.Table3(ctx, env, experiments.Table3Options{K: *k, Reps: *reps})
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintTable3(os.Stdout, res)
		fmt.Println()
	}
	if need("varyk") {
		fmt.Println("== Section 6.2.4: varying k (Fast-Top-k-Opt) ==")
		cells, err := experiments.VaryK(env, []int{1, 10, 50, 100}, *reps)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintVaryK(os.Stdout, cells)
		fmt.Println()
	}
	if need("instances") {
		fmt.Println("== Section 6.2.4: instance retrieval cost by topology frequency ==")
		cells, err := experiments.InstanceRetrieval(env, 8)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintInstanceRetrieval(os.Stdout, cells)
		fmt.Println()
	}
	if need("benchonline") {
		fmt.Println("== Online query execution across worker counts ==")
		rep, err := experiments.BenchOnline(env, *k, *reps, []int{1, 2, 4, 8})
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintOnlineBench(os.Stdout, rep)
		if err := experiments.WriteOnlineBench(rep, *benchout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *benchout)
	}
	if need("benchet") {
		fmt.Println("== Speculative early termination across speculation widths ==")
		rep, err := experiments.BenchET(env, *k, *reps, []int{1, 2, 4, 8})
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintETBench(os.Stdout, rep)
		if err := experiments.WriteETBench(rep, *etout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *etout)
	}
	if need("benchshard") {
		fmt.Println("== Scatter-gather sharded execution across shard counts ==")
		rep, err := experiments.BenchShard(env, *k, *reps, []int{1, 2, 4, 8})
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintShardBench(os.Stdout, rep)
		if err := experiments.WriteShardBench(rep, *shardout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *shardout)
	}
	if need("benchstorage") {
		fmt.Println("== Columnar storage engine: hot paths and table footprints ==")
		rep, err := experiments.BenchStorage(env, *reps)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintStorageBench(os.Stdout, rep)
		if err := experiments.WriteStorageBench(rep, *storeout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *storeout)
	}
	if need("benchupdate") {
		fmt.Println("== Live updates: apply throughput, incremental Refresh vs full rebuild ==")
		rep, err := experiments.BenchUpdate(ctx, env, *reps, nil)
		if err != nil {
			log.Fatal(err)
		}
		experiments.PrintUpdateBench(os.Stdout, rep)
		if err := experiments.WriteUpdateBench(rep, *updout); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n\n", *updout)
	}
}
