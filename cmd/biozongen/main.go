// Command biozongen generates a synthetic Biozon-like database and
// prints its table and degree statistics, for inspecting the workload
// the benchmarks run on.
package main

import (
	"flag"
	"fmt"
	"sort"

	"toposearch/internal/biozon"
	"toposearch/internal/graph"
	"toposearch/internal/relstore"
)

func main() {
	var (
		scale = flag.Int("scale", 2, "size multiplier")
		seed  = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	cfg := biozon.DefaultConfig(*scale)
	cfg.Seed = *seed
	db := biozon.Generate(cfg)

	fmt.Printf("synthetic Biozon database (scale %d, seed %d)\n\n", *scale, *seed)
	fmt.Printf("%-24s %10s %12s\n", "table", "rows", "approx size")
	var total int64
	names := db.TableNames()
	sort.Strings(names)
	for _, name := range names {
		t := db.MustTable(name)
		b := t.ApproxBytes()
		total += b
		fmt.Printf("%-24s %10d %11.1fKB\n", name, t.NumRows(), float64(b)/1024)
	}
	fmt.Printf("%-24s %10s %11.1fKB\n", "total", "", float64(total)/1024)

	g, err := graph.Build(db, biozon.SchemaGraph())
	if err != nil {
		fmt.Println("graph build failed:", err)
		return
	}
	fmt.Printf("\ngraph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// Degree skew per entity set.
	fmt.Printf("\n%-14s %8s %8s %8s\n", "entity set", "count", "avgdeg", "maxdeg")
	for _, es := range []string{biozon.Protein, biozon.DNA, biozon.Unigene,
		biozon.Interaction, biozon.Family, biozon.Pathway, biozon.Structure} {
		tid, ok := g.NodeTypes.Lookup(es)
		if !ok {
			continue
		}
		nodes := g.NodesOfType(tid)
		sum, maxd := 0, 0
		for _, n := range nodes {
			d := g.Degree(n)
			sum += d
			if d > maxd {
				maxd = d
			}
		}
		avg := 0.0
		if len(nodes) > 0 {
			avg = float64(sum) / float64(len(nodes))
		}
		fmt.Printf("%-14s %8d %8.2f %8d\n", es, len(nodes), avg, maxd)
	}

	// Keyword selectivities on Protein.
	prot := db.MustTable(biozon.TabProtein)
	fmt.Printf("\nProtein.desc keyword selectivities:\n")
	for _, level := range []string{"selective", "medium", "unselective"} {
		p, err := biozon.SelectivityPred(prot.Schema, level)
		if err != nil {
			continue
		}
		n := 0
		prot.Scan(func(_ int32, r relstore.Row) bool {
			if p.Eval(r) {
				n++
			}
			return true
		})
		fmt.Printf("  %-12s %6.1f%%\n", level, 100*float64(n)/float64(prot.NumRows()))
	}
}
